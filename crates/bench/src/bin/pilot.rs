//! Calibration pilot: time one pretrain+eval cycle and check effect
//! direction (baseline vs CQ-A vs CQ-C) on a small slice.
//!
//! Checkpoint mode (used by the CI kill-and-resume gate): when any of
//! `--epochs`, `--stop-after`, `--ckpt` or `--resume` is given, the
//! pilot runs ONLY the CQ-A pretrain, driven by those flags:
//!
//! ```text
//! pilot --epochs 2 --ckpt a.ckpt              # full run, ckpt after epoch 1
//! pilot --epochs 2 --stop-after 1 --ckpt b.ckpt   # "killed" after the save
//! pilot --epochs 2 --resume b.ckpt            # resumed continuation
//! ```
//!
//! With `CQ_OBS=<trace.jsonl>` each invocation writes a trace; the two
//! segment traces merged with `cq-trace merge` must diff clean against
//! the uninterrupted run's trace (`cq-trace diff`) — that is the bitwise
//! resume gate.
//!
//! Inference mode: `pilot --infer <ckpt>` converts a checkpoint written
//! by the checkpoint mode to a real i8 integer program (`cq-infer`) —
//! the i32 accumulator headroom proof runs as a conversion-time
//! assertion — and reports int8-vs-fake-quant parity and throughput on
//! the test split. Exits non-zero if parity misses the checkpoint-gate
//! thresholds (see [`INFER_KNN_MIN`]).

use cq_bench::parity::{feature_parity, REL_ERR_MAX};
use cq_bench::*;
use cq_core::{Pipeline, SimclrTrainer, TrainState};
use cq_models::{Arch, Encoder};
use cq_nn::ForwardCtx;
use cq_quant::{Precision, PrecisionSet, QuantConfig, QuantMode};
use cq_tensor::Tensor;
use std::time::Instant;

/// Counting allocator so the `mem.alloc_count` phase metric is live in
/// pilot runs (a plain `System` pass-through plus one relaxed atomic
/// increment; see `cq_obs::alloc`).
#[global_allocator]
static ALLOC: cq_obs::alloc::CountingAlloc = cq_obs::alloc::CountingAlloc::system();

/// Flags of the checkpoint mode; `None` everywhere means the classic
/// calibration pilot.
#[derive(Default)]
struct CkptArgs {
    epochs: Option<usize>,
    stop_after: Option<usize>,
    ckpt: Option<String>,
    resume: Option<String>,
    infer: Option<String>,
}

impl CkptArgs {
    fn parse() -> CkptArgs {
        let mut out = CkptArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut value = |flag: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("pilot: {flag} needs a value");
                    std::process::exit(2);
                })
            };
            match a.as_str() {
                "--epochs" => out.epochs = value("--epochs").parse().ok(),
                "--stop-after" => out.stop_after = value("--stop-after").parse().ok(),
                "--ckpt" => out.ckpt = Some(value("--ckpt")),
                "--resume" => out.resume = Some(value("--resume")),
                "--infer" => out.infer = Some(value("--infer")),
                "--scale" => {
                    value("--scale"); // handled by Scale::from_args
                }
                other if other.starts_with("--scale=") => {}
                other => {
                    eprintln!("pilot: unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    fn checkpoint_mode(&self) -> bool {
        self.epochs.is_some()
            || self.stop_after.is_some()
            || self.ckpt.is_some()
            || self.resume.is_some()
    }
}

/// CQ-A pretrain only, driven by the checkpoint-mode flags. Exits the
/// process on I/O or training errors (this is a CI binary).
fn run_checkpoint_mode(args: &CkptArgs) {
    let mut proto = Protocol::new(Regime::CifarLike, Scale::Quick);
    proto.data = proto.data.with_sizes(512, 256);
    proto.pretrain_epochs = args.epochs.unwrap_or(2);
    let (train, _) = proto.datasets();
    let fail = |what: &str, e: &dyn std::fmt::Display| -> ! {
        eprintln!("pilot: {what}: {e}");
        std::process::exit(1);
    };
    let pset = PrecisionSet::range(6, 16).unwrap_or_else(|e| fail("precision set", &e));
    let enc = Encoder::new(&proto.encoder_cfg(Arch::ResNet18), proto.seed)
        .unwrap_or_else(|e| fail("encoder init", &e));
    let mut trainer = SimclrTrainer::new(enc, proto.pretrain_cfg(Pipeline::CqA, Some(pset)))
        .unwrap_or_else(|e| fail("trainer init", &e));

    if let Some(path) = &args.resume {
        let f = std::fs::File::open(path).unwrap_or_else(|e| fail(path, &e));
        trainer
            .load_checkpoint(std::io::BufReader::new(f))
            .unwrap_or_else(|e| fail(path, &e));
        eprintln!("  [ckpt] resumed {path} at epoch {}", trainer.epochs_done());
    }
    if let Some(path) = &args.ckpt {
        // Save after epoch 1 (or the --stop-after epoch when given),
        // then either exit ("killed" segment) or continue the run.
        let at = args.stop_after.unwrap_or(1);
        trainer
            .train_until(&train, at)
            .unwrap_or_else(|e| fail("pretrain", &e));
        let f = std::fs::File::create(path).unwrap_or_else(|e| fail(path, &e));
        trainer
            .save_checkpoint(std::io::BufWriter::new(f))
            .unwrap_or_else(|e| fail(path, &e));
        eprintln!(
            "  [ckpt] saved {path} after epoch {}",
            trainer.epochs_done()
        );
    }
    if args.stop_after.is_none() {
        trainer
            .train(&train)
            .unwrap_or_else(|e| fail("pretrain", &e));
    }
    println!(
        "pilot ckpt-mode: CQ-A epochs {} steps {} loss {:?} (expl {:.2})",
        trainer.epochs_done(),
        trainer.history().steps,
        trainer.history().final_loss(),
        trainer.history().explosion_rate(),
    );
    if let Some(summary) = obs_summary() {
        eprintln!("{summary}");
    }
}

/// kNN-agreement floor for the checkpoint gate. Looser than the parity
/// harness's [`KNN_AGREEMENT_MIN`] on purpose: the harness measures
/// trained-like calibrated networks (damped residual branches), while a
/// pilot-scale checkpoint has seen a handful of steps and is still close
/// to random init — where ulp-level int-vs-f32 accumulation differences
/// chaotically flip a few nearest neighbors (observed 96.9-99.2% across
/// schedules; relative feature error stays an order of magnitude under
/// its bound). The 99% claim is carried by the 48-config parity sweep.
const INFER_KNN_MIN: f32 = 0.95;

/// Integer-inference mode: converts a checkpoint-mode checkpoint to an
/// i8 program and reports parity + throughput against the fake-quant
/// f32 path on the test split. Exits non-zero on conversion failure
/// (including the headroom gate) or a parity miss.
fn run_infer_mode(path: &str) {
    let fail = |what: &str, e: &dyn std::fmt::Display| -> ! {
        eprintln!("pilot: {what}: {e}");
        std::process::exit(1);
    };
    let mut proto = Protocol::new(Regime::CifarLike, Scale::Quick);
    proto.data = proto.data.with_sizes(512, 256);
    let cfg = proto.encoder_cfg(Arch::ResNet18);

    let f = std::fs::File::open(path).unwrap_or_else(|e| fail(path, &e));
    let st = TrainState::read(std::io::BufReader::new(f)).unwrap_or_else(|e| fail(path, &e));
    let mut enc =
        cq_infer::encoder_from_train_state(&st, &cfg).unwrap_or_else(|e| fail("rebuild", &e));
    let t0 = Instant::now();
    // Conversion runs the i32 accumulator headroom proof on every MAC;
    // an unprovable layer aborts here, before any integer math runs.
    let int = cq_infer::IntEncoder::from_encoder(&enc).unwrap_or_else(|e| fail("convert", &e));
    let t_conv = t0.elapsed().as_secs_f32();

    let (_, test) = proto.datasets();
    let idx: Vec<usize> = (0..test.len()).collect();
    let (x, labels) = test.batch(&idx);
    // Deployment inputs are 8-bit images; project the synthetic pixels
    // onto the same grid so both paths read identical data.
    let dims = x.dims().to_vec();
    let mut pixels = x.into_vec();
    cq_quant::fake_quant_into(&mut pixels, Precision::Bits(8), QuantMode::Round);
    let x = Tensor::from_vec(pixels, &dims).unwrap_or_else(|e| fail("batch", &e));

    let fake8 = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(8)));
    let ref_feats = enc
        .features(&x, &fake8)
        .unwrap_or_else(|e| fail("f32 forward", &e));
    let int_feats = int
        .features(&x)
        .unwrap_or_else(|e| fail("int8 forward", &e));
    let (max_abs, rel, agree) = feature_parity(&int_feats, &ref_feats, &labels);
    let pass = agree >= INFER_KNN_MIN && rel <= REL_ERR_MAX;

    let n = dims[0];
    let rounds = 3;
    let t1 = Instant::now();
    for _ in 0..rounds {
        enc.features(&x, &fake8)
            .unwrap_or_else(|e| fail("f32 forward", &e));
    }
    let f32_ips = (rounds * n) as f32 / t1.elapsed().as_secs_f32();
    let t2 = Instant::now();
    for _ in 0..rounds {
        int.features(&x)
            .unwrap_or_else(|e| fail("int8 forward", &e));
    }
    let int_ips = (rounds * n) as f32 / t2.elapsed().as_secs_f32();

    println!(
        "pilot infer: {path}: {} int8 MACs, headroom proof ok ({t_conv:.2}s conversion)",
        int.num_macs()
    );
    println!(
        "  parity over {n} test images: max abs {max_abs:.4} rel {rel:.4} kNN agreement {:.1}% -> {}",
        100.0 * agree,
        if pass { "ok" } else { "FAIL" }
    );
    println!(
        "  throughput: fake-quant f32 {f32_ips:.1} imgs/s | int8 {int_ips:.1} imgs/s | ratio {:.2}x",
        int_ips / f32_ips
    );
    if !pass {
        std::process::exit(1);
    }
}

fn main() {
    obs_init();
    let args = CkptArgs::parse();
    if let Some(path) = &args.infer {
        run_infer_mode(path);
        return;
    }
    if args.checkpoint_mode() {
        run_checkpoint_mode(&args);
        return;
    }
    let mut proto = Protocol::new(Regime::CifarLike, Scale::Quick);
    proto.data = proto.data.with_sizes(512, 256);
    proto.pretrain_epochs = 8;
    proto.ft_epochs = 8;
    let (train, test) = proto.datasets();
    for (name, pipeline, pset) in [
        ("SimCLR", Pipeline::Baseline, None),
        (
            "CQ-A",
            Pipeline::CqA,
            Some(PrecisionSet::range(6, 16).unwrap()),
        ),
        (
            "CQ-C",
            Pipeline::CqC,
            Some(PrecisionSet::range(6, 16).unwrap()),
        ),
    ] {
        let t0 = Instant::now();
        let (mut enc, expl) =
            pretrain_simclr(Arch::ResNet18, pipeline, pset, &proto, &train).unwrap();
        let t_pre = t0.elapsed().as_secs_f32();
        let t1 = Instant::now();
        let grid = finetune_grid(&enc, &train, &test, &proto).unwrap();
        let t_ft = t1.elapsed().as_secs_f32();
        let lin = linear_probe(&mut enc, &train, &test, &proto).unwrap();
        println!(
            "{name}: pretrain {t_pre:.1}s (expl {expl:.2}), ft-grid {t_ft:.1}s | fp10 {:.1} fp1 {:.1} q10 {:.1} q1 {:.1} | linear {lin:.1}",
            grid.fp10, grid.fp1, grid.q10, grid.q1
        );
    }
    if let Some(summary) = obs_summary() {
        println!("\n{summary}");
    }
}
