//! Calibration pilot: time one pretrain+eval cycle and check effect
//! direction (baseline vs CQ-A vs CQ-C) on a small slice.

use cq_bench::*;
use cq_core::Pipeline;
use cq_models::Arch;
use cq_quant::PrecisionSet;
use std::time::Instant;

fn main() {
    obs_init();
    let mut proto = Protocol::new(Regime::CifarLike, Scale::Quick);
    proto.data = proto.data.with_sizes(512, 256);
    proto.pretrain_epochs = 8;
    proto.ft_epochs = 8;
    let (train, test) = proto.datasets();
    for (name, pipeline, pset) in [
        ("SimCLR", Pipeline::Baseline, None),
        (
            "CQ-A",
            Pipeline::CqA,
            Some(PrecisionSet::range(6, 16).unwrap()),
        ),
        (
            "CQ-C",
            Pipeline::CqC,
            Some(PrecisionSet::range(6, 16).unwrap()),
        ),
    ] {
        let t0 = Instant::now();
        let (mut enc, expl) =
            pretrain_simclr(Arch::ResNet18, pipeline, pset, &proto, &train).unwrap();
        let t_pre = t0.elapsed().as_secs_f32();
        let t1 = Instant::now();
        let grid = finetune_grid(&enc, &train, &test, &proto).unwrap();
        let t_ft = t1.elapsed().as_secs_f32();
        let lin = linear_probe(&mut enc, &train, &test, &proto).unwrap();
        println!(
            "{name}: pretrain {t_pre:.1}s (expl {expl:.2}), ft-grid {t_ft:.1}s | fp10 {:.1} fp1 {:.1} q10 {:.1} q1 {:.1} | linear {lin:.1}",
            grid.fp10, grid.fp1, grid.q10, grid.q1
        );
    }
    if let Some(summary) = obs_summary() {
        println!("\n{summary}");
    }
}
