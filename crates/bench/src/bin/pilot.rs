//! Calibration pilot: time one pretrain+eval cycle and check effect
//! direction (baseline vs CQ-A vs CQ-C) on a small slice.
//!
//! Checkpoint mode (used by the CI kill-and-resume gate): when any of
//! `--epochs`, `--stop-after`, `--ckpt` or `--resume` is given, the
//! pilot runs ONLY the CQ-A pretrain, driven by those flags:
//!
//! ```text
//! pilot --epochs 2 --ckpt a.ckpt              # full run, ckpt after epoch 1
//! pilot --epochs 2 --stop-after 1 --ckpt b.ckpt   # "killed" after the save
//! pilot --epochs 2 --resume b.ckpt            # resumed continuation
//! ```
//!
//! With `CQ_OBS=<trace.jsonl>` each invocation writes a trace; the two
//! segment traces merged with `cq-trace merge` must diff clean against
//! the uninterrupted run's trace (`cq-trace diff`) — that is the bitwise
//! resume gate.

use cq_bench::*;
use cq_core::{Pipeline, SimclrTrainer};
use cq_models::{Arch, Encoder};
use cq_quant::PrecisionSet;
use std::time::Instant;

/// Counting allocator so the `mem.alloc_count` phase metric is live in
/// pilot runs (a plain `System` pass-through plus one relaxed atomic
/// increment; see `cq_obs::alloc`).
#[global_allocator]
static ALLOC: cq_obs::alloc::CountingAlloc = cq_obs::alloc::CountingAlloc::system();

/// Flags of the checkpoint mode; `None` everywhere means the classic
/// calibration pilot.
#[derive(Default)]
struct CkptArgs {
    epochs: Option<usize>,
    stop_after: Option<usize>,
    ckpt: Option<String>,
    resume: Option<String>,
}

impl CkptArgs {
    fn parse() -> CkptArgs {
        let mut out = CkptArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut value = |flag: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("pilot: {flag} needs a value");
                    std::process::exit(2);
                })
            };
            match a.as_str() {
                "--epochs" => out.epochs = value("--epochs").parse().ok(),
                "--stop-after" => out.stop_after = value("--stop-after").parse().ok(),
                "--ckpt" => out.ckpt = Some(value("--ckpt")),
                "--resume" => out.resume = Some(value("--resume")),
                "--scale" => {
                    value("--scale"); // handled by Scale::from_args
                }
                other if other.starts_with("--scale=") => {}
                other => {
                    eprintln!("pilot: unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    fn checkpoint_mode(&self) -> bool {
        self.epochs.is_some()
            || self.stop_after.is_some()
            || self.ckpt.is_some()
            || self.resume.is_some()
    }
}

/// CQ-A pretrain only, driven by the checkpoint-mode flags. Exits the
/// process on I/O or training errors (this is a CI binary).
fn run_checkpoint_mode(args: &CkptArgs) {
    let mut proto = Protocol::new(Regime::CifarLike, Scale::Quick);
    proto.data = proto.data.with_sizes(512, 256);
    proto.pretrain_epochs = args.epochs.unwrap_or(2);
    let (train, _) = proto.datasets();
    let fail = |what: &str, e: &dyn std::fmt::Display| -> ! {
        eprintln!("pilot: {what}: {e}");
        std::process::exit(1);
    };
    let pset = PrecisionSet::range(6, 16).unwrap_or_else(|e| fail("precision set", &e));
    let enc = Encoder::new(&proto.encoder_cfg(Arch::ResNet18), proto.seed)
        .unwrap_or_else(|e| fail("encoder init", &e));
    let mut trainer = SimclrTrainer::new(enc, proto.pretrain_cfg(Pipeline::CqA, Some(pset)))
        .unwrap_or_else(|e| fail("trainer init", &e));

    if let Some(path) = &args.resume {
        let f = std::fs::File::open(path).unwrap_or_else(|e| fail(path, &e));
        trainer
            .load_checkpoint(std::io::BufReader::new(f))
            .unwrap_or_else(|e| fail(path, &e));
        eprintln!("  [ckpt] resumed {path} at epoch {}", trainer.epochs_done());
    }
    if let Some(path) = &args.ckpt {
        // Save after epoch 1 (or the --stop-after epoch when given),
        // then either exit ("killed" segment) or continue the run.
        let at = args.stop_after.unwrap_or(1);
        trainer
            .train_until(&train, at)
            .unwrap_or_else(|e| fail("pretrain", &e));
        let f = std::fs::File::create(path).unwrap_or_else(|e| fail(path, &e));
        trainer
            .save_checkpoint(std::io::BufWriter::new(f))
            .unwrap_or_else(|e| fail(path, &e));
        eprintln!(
            "  [ckpt] saved {path} after epoch {}",
            trainer.epochs_done()
        );
    }
    if args.stop_after.is_none() {
        trainer
            .train(&train)
            .unwrap_or_else(|e| fail("pretrain", &e));
    }
    println!(
        "pilot ckpt-mode: CQ-A epochs {} steps {} loss {:?} (expl {:.2})",
        trainer.epochs_done(),
        trainer.history().steps,
        trainer.history().final_loss(),
        trainer.history().explosion_rate(),
    );
    if let Some(summary) = obs_summary() {
        eprintln!("{summary}");
    }
}

fn main() {
    obs_init();
    let args = CkptArgs::parse();
    if args.checkpoint_mode() {
        run_checkpoint_mode(&args);
        return;
    }
    let mut proto = Protocol::new(Regime::CifarLike, Scale::Quick);
    proto.data = proto.data.with_sizes(512, 256);
    proto.pretrain_epochs = 8;
    proto.ft_epochs = 8;
    let (train, test) = proto.datasets();
    for (name, pipeline, pset) in [
        ("SimCLR", Pipeline::Baseline, None),
        (
            "CQ-A",
            Pipeline::CqA,
            Some(PrecisionSet::range(6, 16).unwrap()),
        ),
        (
            "CQ-C",
            Pipeline::CqC,
            Some(PrecisionSet::range(6, 16).unwrap()),
        ),
    ] {
        let t0 = Instant::now();
        let (mut enc, expl) =
            pretrain_simclr(Arch::ResNet18, pipeline, pset, &proto, &train).unwrap();
        let t_pre = t0.elapsed().as_secs_f32();
        let t1 = Instant::now();
        let grid = finetune_grid(&enc, &train, &test, &proto).unwrap();
        let t_ft = t1.elapsed().as_secs_f32();
        let lin = linear_probe(&mut enc, &train, &test, &proto).unwrap();
        println!(
            "{name}: pretrain {t_pre:.1}s (expl {expl:.2}), ft-grid {t_ft:.1}s | fp10 {:.1} fp1 {:.1} q10 {:.1} q1 {:.1} | linear {lin:.1}",
            grid.fp10, grid.fp1, grid.q10, grid.q1
        );
    }
    if let Some(summary) = obs_summary() {
        println!("\n{summary}");
    }
}
