//! Harness smoke check: runs a miniature version of every experiment path
//! (all tables + figure) in about a minute, asserting sanity rather than
//! accuracy. Use it to validate a build before launching the real suite.
//!
//! ```text
//! cargo run --release -p cq-bench --bin quickcheck
//! ```

use cq_bench::{
    finetune_grid, linear_probe, pretrain_byol, pretrain_simclr, Protocol, Regime, Scale,
};
use cq_core::{extract_features, Pipeline};
use cq_detect::{train_detector, DetDataset, DetectionConfig, DetectorConfig};
use cq_eval::{knn_accuracy, separability_ratio, tsne, TsneConfig};
use cq_models::Arch;
use cq_quant::PrecisionSet;
use std::time::Instant;

fn main() {
    cq_bench::obs_init();
    let t0 = Instant::now();
    let mut proto = Protocol::new(Regime::CifarLike, Scale::Quick);
    proto.data = proto.data.with_sizes(96, 48);
    proto.pretrain_epochs = 1;
    proto.ft_epochs = 2;
    proto.linear_epochs = 5;
    proto.batch_size = 32;
    let (train, test) = proto.datasets();
    let pset = PrecisionSet::range(6, 16).expect("valid");
    let mut failures = 0usize;
    let mut check = |name: &str, ok: bool| {
        println!("{} {name}", if ok { "ok  " } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    // T1/T4/T7-style: every SimCLR pipeline pretrains + fine-tunes.
    for pipeline in Pipeline::all() {
        let pset_arg = pipeline.needs_precisions().then(|| pset.clone());
        let res = pretrain_simclr(Arch::ResNet18, pipeline, pset_arg, &proto, &train)
            .and_then(|(enc, _)| finetune_grid(&enc, &train, &test, &proto));
        check(
            &format!("simclr pipeline {pipeline}"),
            res.map(|g| g.fp10.is_finite()).unwrap_or(false),
        );
    }
    // extensions
    for pipeline in Pipeline::extensions() {
        let res = pretrain_simclr(Arch::ResNet18, pipeline, None, &proto, &train);
        check(&format!("extension {pipeline}"), res.is_ok());
    }

    // T2/T5-style linear eval.
    {
        let (mut enc, _) =
            pretrain_simclr(Arch::ResNet18, Pipeline::Baseline, None, &proto, &train)
                .expect("pretrain");
        let lin = linear_probe(&mut enc, &train, &test, &proto);
        check(
            "linear evaluation",
            lin.map(|a| (0.0..=100.0).contains(&a)).unwrap_or(false),
        );

        // T3-style detection transfer.
        let (dtr, dte) = DetDataset::generate(&DetectionConfig::default().with_sizes(24, 8));
        let det = train_detector(
            &enc,
            &dtr,
            &dte,
            &DetectorConfig {
                epochs: 1,
                batch_size: 8,
                ..Default::default()
            },
        );
        check(
            "detection transfer",
            det.map(|m| m.ap.is_finite()).unwrap_or(false),
        );

        // F2-style embedding.
        let (feats, labels) = extract_features(&mut enc, &test, 32).expect("features");
        let emb = tsne(
            &feats,
            &TsneConfig {
                iterations: 50,
                ..Default::default()
            },
        );
        check(
            "t-SNE + metrics",
            emb.is_finite()
                && knn_accuracy(&emb, &labels, 3) >= 0.0
                && separability_ratio(&feats, &labels) >= 0.0,
        );
    }

    // T6-style BYOL.
    {
        let res = pretrain_byol(Arch::ResNet18, Pipeline::CqC, Some(pset), &proto, &train);
        check("byol cq-c", res.is_ok());
    }

    if let Some(summary) = cq_bench::obs_summary() {
        println!("\n{summary}");
    }
    println!(
        "quickcheck finished in {:.1}s, {failures} failures",
        t0.elapsed().as_secs_f32()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
