//! Framework comparison: Contrastive Quant (CQ-C) applied to all three
//! siamese SSL frameworks implemented in this repo — SimCLR (negatives),
//! BYOL (momentum target) and SimSiam (stop-grad only, extra baseline
//! from the paper's ref 12) — linear evaluation on the CIFAR-like
//! config, ResNet-18.

use cq_bench::{
    fmt_acc, linear_probe, pretrain_byol_cached, pretrain_simclr_cached, Protocol, Regime, Scale,
};
use cq_core::{Pipeline, SimsiamTrainer};
use cq_eval::Table;
use cq_models::{Arch, Encoder};
use cq_quant::PrecisionSet;

fn main() {
    let scale = Scale::from_args();
    let proto = Protocol::new(Regime::CifarLike, scale);
    let (train, test) = proto.datasets();
    let scale_tag = if scale == Scale::Paper {
        "paper"
    } else {
        "quick"
    };
    let pset = PrecisionSet::range(6, 16).expect("valid");

    let mut table = Table::new(
        "Framework comparison: CQ-C across SSL frameworks (linear eval, ResNet-18)",
        &["Framework", "Baseline", "CQ-C", "Δ"],
    );

    // SimCLR (cached with Table 4).
    let row = |framework: &str, base: f32, cq: f32, table: &mut Table| {
        table.row_owned(vec![
            framework.into(),
            fmt_acc(base),
            fmt_acc(cq),
            format!("{:+.2}", cq - base),
        ]);
    };

    {
        let (mut b, _) = pretrain_simclr_cached(
            &format!("ci-r18-simclr-{scale_tag}"),
            Arch::ResNet18,
            Pipeline::Baseline,
            None,
            &proto,
            &train,
        )
        .expect("simclr");
        let (mut c, _) = pretrain_simclr_cached(
            &format!("ci-r18-cq-c-{scale_tag}"),
            Arch::ResNet18,
            Pipeline::CqC,
            Some(pset.clone()),
            &proto,
            &train,
        )
        .expect("cq-c");
        let lb = linear_probe(&mut b, &train, &test, &proto).expect("linear");
        let lc = linear_probe(&mut c, &train, &test, &proto).expect("linear");
        row("SimCLR", lb, lc, &mut table);
    }

    // BYOL (cached with Table 6).
    {
        let (mut b, _) = pretrain_byol_cached(
            &format!("byol-r18-byol-{scale_tag}"),
            Arch::ResNet18,
            Pipeline::Baseline,
            None,
            &proto,
            &train,
        )
        .expect("byol");
        let (mut c, _) = pretrain_byol_cached(
            &format!("byol-r18-cq-c-{scale_tag}"),
            Arch::ResNet18,
            Pipeline::CqC,
            Some(pset.clone()),
            &proto,
            &train,
        )
        .expect("byol cq-c");
        let lb = linear_probe(&mut b, &train, &test, &proto).expect("linear");
        let lc = linear_probe(&mut c, &train, &test, &proto).expect("linear");
        row("BYOL", lb, lc, &mut table);
    }

    // SimSiam (no cache — extension runs).
    {
        let run = |pipeline: Pipeline| -> Encoder {
            eprintln!("  [train] simsiam {pipeline}");
            let enc =
                Encoder::new(&proto.byol_encoder_cfg(Arch::ResNet18), proto.seed).expect("encoder");
            let cfg =
                proto.pretrain_cfg(pipeline, pipeline.needs_precisions().then(|| pset.clone()));
            let mut t = SimsiamTrainer::new(enc, cfg).expect("trainer");
            t.train(&train).expect("training");
            t.into_encoder()
        };
        let mut b = run(Pipeline::Baseline);
        let mut c = run(Pipeline::CqC);
        let lb = linear_probe(&mut b, &train, &test, &proto).expect("linear");
        let lc = linear_probe(&mut c, &train, &test, &proto).expect("linear");
        row("SimSiam", lb, lc, &mut table);
    }

    table.print();
    let _ = table.write_csv(std::path::Path::new("frameworks.csv"));
}
