//! Table 8: CQ-Quant — quantization as the *only* augmentation (§4.5) —
//! vs no SSL pre-training at all, on ResNet-74/110, precision sets 6-16
//! and 8-16. Reports fine-tuning (FP, 1% and 10% labels) and linear
//! evaluation, matching the paper's columns.

use cq_bench::{fmt_acc, linear_probe, pretrain_simclr_cached, Protocol, Regime, Scale};
use cq_core::Pipeline;
use cq_eval::{finetune, FinetuneConfig, Table};
use cq_models::{Arch, Encoder};
use cq_quant::{Precision, PrecisionSet};

fn main() {
    let scale = Scale::from_args();
    let proto = Protocol::new(Regime::CifarLike, scale);
    let (train, test) = proto.datasets();
    let scale_tag = if scale == Scale::Paper {
        "paper"
    } else {
        "quick"
    };

    let mut table = Table::new(
        "Table 8: CQ-Quant (quantization-only augmentation) vs no SSL training",
        &[
            "Network",
            "Precision Set",
            "FT FP 1%",
            "FT FP 10%",
            "Linear eval",
        ],
    );
    let ft = |enc: &Encoder, fraction: f32| -> f32 {
        let cfg = FinetuneConfig {
            label_fraction: fraction,
            precision: Precision::Fp,
            epochs: proto.ft_epochs,
            batch_size: 64,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: proto.seed ^ 0xF1,
        };
        finetune(enc, &train, &test, &cfg)
            .expect("fine-tuning failed")
            .test_acc
    };

    for (arch, at) in [(Arch::ResNet74, "r74"), (Arch::ResNet110, "r110")] {
        for (lo, hi) in [(6u8, 16u8), (8, 16)] {
            let pset = PrecisionSet::range(lo, hi).expect("valid");
            let tag = format!("cqq-{at}-{lo}-{hi}-{scale_tag}");
            let (mut enc, _) =
                pretrain_simclr_cached(&tag, arch, Pipeline::CqQuant, Some(pset), &proto, &train)
                    .expect("pretraining failed");
            let lin = linear_probe(&mut enc, &train, &test, &proto).expect("linear eval failed");
            table.row_owned(vec![
                arch.name().into(),
                format!("{lo}-{hi}"),
                fmt_acc(ft(&enc, 0.01)),
                fmt_acc(ft(&enc, 0.1)),
                fmt_acc(lin),
            ]);
            eprintln!("  {arch} {lo}-{hi}: done");
        }
        // No-SSL baseline: a freshly initialised encoder.
        let mut fresh = Encoder::new(&proto.encoder_cfg(arch), proto.seed).expect("encoder");
        let lin = linear_probe(&mut fresh, &train, &test, &proto).expect("linear eval failed");
        table.row_owned(vec![
            arch.name().into(),
            "No SSL Training".into(),
            fmt_acc(ft(&fresh, 0.01)),
            fmt_acc(ft(&fresh, 0.1)),
            fmt_acc(lin),
        ]);
        eprintln!("  {arch} no-ssl: done");
    }
    table.print();
    let _ = table.write_csv(std::path::Path::new("table8.csv"));
}
