//! `cq-bench parity` — int8-vs-fake-quant parity over all 48 built-in
//! encoder configurations (the acceptance gate for the integer
//! inference path).
//!
//! For each configuration the harness converts a BN-randomized encoder
//! with `cq-infer` and compares integer features against the 8-bit
//! fake-quant f32 path on a clustered batch: max-abs / relative feature
//! error plus leave-one-out 1-NN top-1 agreement. Any configuration
//! below the thresholds (agreement ≥ 99%, relative error ≤ 15%) fails
//! the run.
//!
//! ```text
//! parity [--per-cluster N]    # default 16 (128 samples per config)
//! ```
//!
//! Honors `CQ_THREADS`; results are bitwise thread-count independent
//! (integer accumulation), which the CI lane checks by running at 1 and
//! 4 threads.

use cq_bench::parity::{parity_builtin, KNN_AGREEMENT_MIN, PARITY_PER_CLUSTER, REL_ERR_MAX};

fn main() {
    let mut per_cluster = PARITY_PER_CLUSTER;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--per-cluster" => {
                per_cluster = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("parity: --per-cluster needs a positive integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("parity: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let reports = match parity_builtin(per_cluster) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("parity: harness error: {e}");
            std::process::exit(1);
        }
    };

    println!("| config | max abs err | rel err | kNN agreement | verdict |");
    println!("|---|---|---|---|---|");
    let mut failures = 0usize;
    for r in &reports {
        if !r.pass {
            failures += 1;
        }
        println!(
            "| {} | {:.4} | {:.4} | {:.1}% | {} |",
            r.label,
            r.max_abs_err,
            r.rel_err,
            100.0 * r.knn_agreement,
            if r.pass { "ok" } else { "FAIL" }
        );
    }
    println!(
        "\nparity: {}/{} configs pass (thresholds: agreement >= {:.0}%, rel err <= {:.0}%)",
        reports.len() - failures,
        reports.len(),
        100.0 * KNN_AGREEMENT_MIN,
        100.0 * REL_ERR_MAX
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
