//! Table 5: linear evaluation on the CIFAR-like config across six
//! networks (reuses the cached Table 4 encoders).

use cq_bench::{fmt_acc, linear_probe, pretrain_simclr_cached, Protocol, Regime, Scale};
use cq_core::Pipeline;
use cq_eval::Table;
use cq_models::Arch;
use cq_quant::PrecisionSet;

fn arch_tag(arch: Arch) -> &'static str {
    match arch {
        Arch::ResNet18 => "r18",
        Arch::ResNet34 => "r34",
        Arch::ResNet74 => "r74",
        Arch::ResNet110 => "r110",
        Arch::ResNet152 => "r152",
        Arch::MobileNetV2 => "mnv2",
    }
}

fn main() {
    let scale = Scale::from_args();
    let proto = Protocol::new(Regime::CifarLike, scale);
    let (train, test) = proto.datasets();
    let scale_tag = if scale == Scale::Paper {
        "paper"
    } else {
        "quick"
    };

    let mut header = vec!["Method".to_string()];
    header.extend(Arch::all().iter().map(|a| a.name().to_string()));
    let headers: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table 5: Linear evaluation on six networks (CIFAR-like)",
        &headers,
    );

    for (name, pipeline, pset) in [
        ("SimCLR", Pipeline::Baseline, None),
        (
            "CQ-C",
            Pipeline::CqC,
            Some(PrecisionSet::range(6, 16).expect("valid")),
        ),
    ] {
        let mut cells = vec![name.to_string()];
        for arch in Arch::all() {
            let tag = format!("ci-{}-{}-{scale_tag}", arch_tag(arch), name.to_lowercase());
            let (mut enc, _) =
                pretrain_simclr_cached(&tag, arch, pipeline, pset.clone(), &proto, &train)
                    .expect("pretraining failed");
            let acc = linear_probe(&mut enc, &train, &test, &proto).expect("linear eval failed");
            cells.push(fmt_acc(acc));
            eprintln!("  {arch} {name}: linear done");
        }
        table.row_owned(cells);
    }
    table.print();
    let _ = table.write_csv(std::path::Path::new("table5.csv"));
}
