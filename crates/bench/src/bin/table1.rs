//! Table 1: Contrastive Quant vs SimCLR on the ImageNet-like config,
//! ResNet-18/34, fine-tuning with 10%/1% labels at FP and 4-bit.
//!
//! Paper pairing (§4.2): CQ-A uses precision set 6-16, CQ-C uses 8-16.

use cq_bench::{finetune_grid, fmt_acc, pretrain_simclr_cached, Protocol, Regime, Scale};
use cq_core::Pipeline;
use cq_eval::Table;
use cq_models::Arch;
use cq_quant::PrecisionSet;

fn main() {
    cq_bench::obs_init();
    let scale = Scale::from_args();
    let proto = Protocol::new(Regime::ImagenetLike, scale);
    let (train, test) = proto.datasets();
    let scale_tag = if scale == Scale::Paper {
        "paper"
    } else {
        "quick"
    };

    let mut table = Table::new(
        "Table 1: Benchmark Contrastive Quant against SimCLR (ImageNet-like, fine-tuning)",
        &[
            "Network",
            "Method",
            "Precision Set",
            "FP 10%",
            "FP 1%",
            "4-bit 10%",
            "4-bit 1%",
        ],
    );
    for arch in [Arch::ResNet18, Arch::ResNet34] {
        let arch_tag = if arch == Arch::ResNet18 { "r18" } else { "r34" };
        let methods: [(&str, Pipeline, Option<PrecisionSet>, &str); 3] = [
            ("SimCLR", Pipeline::Baseline, None, "-"),
            (
                "CQ-A",
                Pipeline::CqA,
                Some(PrecisionSet::range(6, 16).expect("valid")),
                "6-16",
            ),
            (
                "CQ-C",
                Pipeline::CqC,
                Some(PrecisionSet::range(8, 16).expect("valid")),
                "8-16",
            ),
        ];
        for (name, pipeline, pset, pset_name) in methods {
            let tag = format!("in-{arch_tag}-{}-{scale_tag}", name.to_lowercase());
            let (enc, _) = pretrain_simclr_cached(&tag, arch, pipeline, pset, &proto, &train)
                .expect("pretraining failed");
            let grid = finetune_grid(&enc, &train, &test, &proto).expect("fine-tuning failed");
            table.row_owned(vec![
                arch.name().into(),
                name.into(),
                pset_name.into(),
                fmt_acc(grid.fp10),
                fmt_acc(grid.fp1),
                fmt_acc(grid.q10),
                fmt_acc(grid.q1),
            ]);
            eprintln!("  {arch} {name}: done");
        }
    }
    table.print();
    let _ = table.write_csv(std::path::Path::new("table1.csv"));
    if let Some(summary) = cq_bench::obs_summary() {
        println!("\n{summary}");
    }
}
