//! `cq-bench kernels` — measured kernel throughput, written as a
//! schema-versioned `BENCH_<pr>.json` so every PR's speed claim is a
//! committed artifact instead of a sentence.
//!
//! For each kernel (`matmul`, `matmul_nt`, `matmul_tn`, `conv2d`) across
//! a fixed size grid, reports blocked GFLOP/s, the pre-rewrite scalar
//! baseline GFLOP/s (the unblocked reference kernels dispatched exactly
//! as the old `Tensor::matmul*` were), and the speedup — both sides
//! timed in-process at the same thread count, so the ratio isolates the
//! kernel change. Also times a 2-step CQ-A pilot (the golden-trace
//! workload) in steps/sec, plus machine/thread metadata so `cq-trace
//! bench-diff` can refuse to hard-gate across different hardware.
//!
//! The v2 schema adds a measured machine roofline — peak multiply-add
//! GFLOP/s (independent accumulator chains across the worker pool; the
//! kernels' determinism contract forbids FMA, so the mul-add peak is
//! the ceiling they can legally reach) and stream triad bandwidth — and
//! stamps every grid point with its arithmetic intensity and the
//! percentage of the roofline-attainable throughput it achieves. The
//! machine fingerprint gains the effective thread count (post
//! `CQ_THREADS`) and the SIMD dispatch level, so a `bench-diff` across
//! a thread-count or ISA change degrades to report-only.
//!
//! The v3 schema adds the integer inference path: `matmul_i8` /
//! `matmul_i8_nt` grid points (i8×i8→i32 blocked kernels vs their
//! serial references, in integer GOP/s under the same `gflops` key) and
//! an `int8_encoders` section measuring end-to-end imgs/sec of the
//! `cq-infer` i8 program against the fake-quant f32 eval forward per
//! encoder architecture.
//!
//! PR 10 adds two optional sections under the unchanged v3 schema: an
//! `ew_chains` section measuring the graph executor's fused vs. unfused
//! elementwise-chain throughput (BN → residual adds → ReLU → fake-quant,
//! in GB/s of logical chain traffic), and a `fusion_pilots` section
//! timing the 2-step CQ-A/B/C pilots under both fusion modes.
//!
//! ```text
//! kernels [--scale quick|paper] [--out BENCH_10.json]
//! ```

use cq_bench::parity::clustered_batch;
use cq_bench::Scale;
use cq_core::{Pipeline, PretrainConfig, SimclrTrainer};
use cq_data::{Dataset, DatasetConfig};
use cq_infer::IntEncoder;
use cq_models::{Arch, Encoder, EncoderConfig};
use cq_nn::graph::{with_fusion_mode, FusionMode, Recorder};
use cq_nn::{BatchNorm2d, ForwardCtx, Layer, ParamSet, Relu};
use cq_quant::{Precision, PrecisionSet, QuantConfig};
use cq_tensor::gemm::int8::{gemm_i8_nn_ref, gemm_i8_nt_ref, par_gemm_i8, IntKind};
use cq_tensor::gemm::{self, Kind};
use cq_tensor::par::{num_threads, parallel_chunks_mut, parallel_for_each};
use cq_tensor::{im2col, Conv2dSpec, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc as StdArc;
use std::time::Instant;

/// Schema identifier checked by `cq-trace bench-check` / `bench-diff`.
const SCHEMA: &str = "cq-bench-kernels/v3";

/// This PR's artifact number.
const PR: u32 = 10;

/// One measured grid point.
struct Point {
    kernel: &'static str,
    m: usize,
    n: usize,
    k: usize,
    iters: usize,
    gflops: f64,
    ref_gflops: f64,
}

/// Times `f` (already warmed up): picks an iteration count that makes one
/// rep last ~80 ms, runs three reps, returns best seconds-per-call.
fn time_best(mut f: impl FnMut()) -> (f64, usize) {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-7);
    let iters = (0.08 / once).ceil().max(1.0) as usize;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    (best, iters)
}

fn randvec(len: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Measures one matmul layout at `m`×`n`×`k`: blocked kernel vs the
/// pre-rewrite parallel reference, same data, same thread count.
fn bench_matmul(kind: Kind, m: usize, n: usize, k: usize, rng: &mut StdRng) -> Point {
    let (alen, blen) = match kind {
        Kind::Nn => (m * k, k * n),
        Kind::Nt => (m * k, n * k),
        Kind::Tn => (k * m, k * n),
    };
    let a = randvec(alen, rng);
    let b = randvec(blen, rng);
    let mut out = vec![0.0f32; m * n];
    let flops = 2.0 * m as f64 * n as f64 * k as f64;

    let (t_blocked, iters) = time_best(|| gemm::par_gemm(kind, &a, &b, m, n, k, &mut out));
    let (t_ref, _) = time_best(|| gemm::reference::par_gemm_ref(kind, &a, &b, m, n, k, &mut out));

    Point {
        kernel: match kind {
            Kind::Nn => "matmul",
            Kind::Nt => "matmul_nt",
            Kind::Tn => "matmul_tn",
        },
        m,
        n,
        k,
        iters,
        gflops: flops / t_blocked / 1e9,
        ref_gflops: flops / t_ref / 1e9,
    }
}

/// Measures a per-sample dense conv forward (im2col + NN product, the
/// Conv2d band-worker hot path) for a `c`→`o` layer on an `h`×`w` input.
/// `m`/`n`/`k` record the lowered product shape. Both sides share the new
/// im2col, so the ratio isolates the GEMM.
fn bench_conv(c: usize, o: usize, h: usize, w: usize, rng: &mut StdRng) -> Point {
    let spec = Conv2dSpec::new(3, 1, 1);
    let (oh, ow) = spec.out_hw(h, w).expect("conv geometry");
    let ckk = spec.col_rows(c);
    let x = randvec(c * h * w, rng);
    let wgt = randvec(o * ckk, rng);
    let mut cols = vec![0.0f32; ckk * oh * ow];
    let mut out = vec![0.0f32; o * oh * ow];
    let flops = 2.0 * (o * ckk * oh * ow) as f64;

    let (t_blocked, iters) = time_best(|| {
        im2col(&x, c, h, w, &spec, &mut cols);
        gemm::gemm_nn(&wgt, o, ckk, &cols, oh * ow, &mut out);
    });
    let (t_ref, _) = time_best(|| {
        im2col(&x, c, h, w, &spec, &mut cols);
        gemm::reference::gemm_nn(&wgt, o, ckk, &cols, oh * ow, &mut out);
    });

    Point {
        kernel: "conv2d",
        m: o,
        n: oh * ow,
        k: ckk,
        iters,
        gflops: flops / t_blocked / 1e9,
        ref_gflops: flops / t_ref / 1e9,
    }
}

/// Measures one i8×i8→i32 matmul layout at `m`×`n`×`k`: the blocked
/// integer kernel (parallel dispatch) against the serial scalar
/// reference. Throughput is integer GOP/s (2·m·n·k MAC ops), reported
/// under the same `gflops` key so the diff tooling treats the points
/// uniformly.
fn bench_matmul_i8(kind: IntKind, m: usize, n: usize, k: usize, rng: &mut StdRng) -> Point {
    let blen = match kind {
        IntKind::Nn => k * n,
        IntKind::Nt => n * k,
    };
    let a: Vec<i8> = (0..m * k)
        .map(|_| rng.gen_range(-128i16..128) as i8)
        .collect();
    let b: Vec<i8> = (0..blen)
        .map(|_| rng.gen_range(-128i16..128) as i8)
        .collect();
    let mut out = vec![0i32; m * n];
    let ops = 2.0 * m as f64 * n as f64 * k as f64;

    let (t_blocked, iters) = time_best(|| par_gemm_i8(kind, &a, &b, m, n, k, &mut out));
    let (t_ref, _) = time_best(|| match kind {
        IntKind::Nn => gemm_i8_nn_ref(&a, m, k, &b, n, &mut out),
        IntKind::Nt => gemm_i8_nt_ref(&a, m, k, &b, n, &mut out),
    });

    Point {
        kernel: match kind {
            IntKind::Nn => "matmul_i8",
            IntKind::Nt => "matmul_i8_nt",
        },
        m,
        n,
        k,
        iters,
        gflops: ops / t_blocked / 1e9,
        ref_gflops: ops / t_ref / 1e9,
    }
}

/// One end-to-end encoder throughput measurement: images per second of
/// the `cq-infer` i8 program vs the fake-quant f32 eval forward.
struct EncPoint {
    arch: Arch,
    n: usize,
    f32_ips: f64,
    int8_ips: f64,
}

/// Measures int8-vs-f32 imgs/sec for one architecture on a synthetic
/// batch (width 8, 16×16 images — the parity-harness geometry).
fn bench_int8_encoder(arch: Arch, rng_seed: u64) -> EncPoint {
    let mut enc = Encoder::new(&EncoderConfig::new(arch, 8), rng_seed).expect("encoder");
    let int = IntEncoder::from_encoder(&enc).expect("int conversion");
    let (x, _) = clustered_batch(8, 16, rng_seed);
    let n = x.dims()[0];
    let fake8 = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(8)));

    let (t_f32, _) = time_best(|| {
        enc.features(&x, &fake8).expect("f32 forward");
    });
    let (t_int, _) = time_best(|| {
        int.features(&x).expect("int8 forward");
    });
    EncPoint {
        arch,
        n,
        f32_ips: n as f64 / t_f32,
        int8_ips: n as f64 / t_int,
    }
}

/// One fused-vs-unfused elementwise-chain measurement.
struct ChainPoint {
    chain: &'static str,
    elems: usize,
    groups: usize,
    iters: usize,
    fused_gbs: f64,
    unfused_gbs: f64,
}

/// Measures the elementwise chain BN → (`adds` × residual add) → ReLU →
/// 8-bit fake-quant over an `[n, c, h, w]` map, fused vs. unfused.
///
/// The *fused* arm drives the graph executor through the public
/// [`Recorder`] path: one recorded chain, one working buffer (the input's
/// own storage), one merged pass with the quantizer's range scan folded
/// in. The *unfused* arm is the eager per-layer fallback — standalone
/// `Layer::forward` calls plus `Tensor::add` joins, the path every
/// non-graph caller still takes — which materializes a fresh tensor per
/// layer and re-reads it on the next. Both arms compute bit-identical
/// values and carry identical harness costs: each feeds its own output
/// forward as the next iteration's input (the chain contracts toward a
/// fixed point, so values stay finite and the quant range stays open),
/// and residual operands are `Arc`-shared, never deep-copied. Throughput
/// counts the chain's *logical* traffic — one read of the input, one
/// read per residual operand, one write of the output — so both arms are
/// scored against the same bytes and the ratio is exactly the memory
/// traffic (intermediate buffers, re-reads, quant re-scan) that graph
/// fusion elides. Tensors are sized past L2 but under the allocator's
/// mmap threshold, so timings measure memory traffic rather than
/// page-fault churn. (`CQ_FUSION=on` vs `off` *within* the recorder is
/// the bitwise-contract pair, benchmarked by the `fusion_pilots`
/// section below.)
fn bench_ew_chain(
    chain: &'static str,
    dims: [usize; 4],
    adds: usize,
    rng: &mut StdRng,
) -> ChainPoint {
    let [n, c, h, w] = dims;
    let elems = n * c * h * w;
    let mut ps = ParamSet::new();
    // Each arm gets its own layers (forward takes `&mut self`) and its
    // own feed-forward state; both pairs are identically initialized, so
    // the two arms iterate the same chain function.
    let mut bn = BatchNorm2d::new(&mut ps, "bn", c);
    let mut relu = Relu::new();
    let mut bn_e = BatchNorm2d::new(&mut ps, "bn_eager", c);
    let mut relu_e = Relu::new();
    // Eval-mode BN (running statistics) keeps the chain free of the
    // whole-tensor stats reduction, so the measurement is the executor's
    // pass structure and nothing else.
    let ctx = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(8)));
    let input = Tensor::from_vec(randvec(elems, rng), &dims).expect("chain input");
    let mut state = Some(input.clone());
    let mut state_e = Some(input);
    let skips: Vec<StdArc<Tensor>> = (0..adds)
        .map(|_| {
            StdArc::new(Tensor::from_vec(randvec(elems, rng), &dims).expect("residual operand"))
        })
        .collect();

    let mut run_fused = || {
        let prev = state.take().expect("chain state");
        with_fusion_mode(FusionMode::Fused, || {
            let mut rec = Recorder::new(&ps, &ctx, prev);
            rec.run(&mut bn).expect("bn record");
            for s in &skips {
                rec.push_add(StdArc::clone(s)).expect("residual add");
            }
            rec.run(&mut relu).expect("relu record");
            let (y, _) = rec.finish().expect("chain execution");
            state = Some(y);
        });
        std::hint::black_box(&state);
    };
    let mut run_eager = || {
        let prev = state_e.take().expect("chain state");
        // cq-allow(no-eager-forward): this arm measures the eager fallback on purpose
        let (mut t, _) = bn_e.forward(&ps, &prev, &ctx).expect("bn forward");
        for s in &skips {
            t = t.add(s.as_ref()).expect("residual add");
        }
        // cq-allow(no-eager-forward): this arm measures the eager fallback on purpose
        let (y, _) = relu_e.forward(&ps, &t, &ctx).expect("relu forward");
        state_e = Some(y);
        std::hint::black_box(&state_e);
    };
    // Interleave the arms rep-by-rep instead of timing one arm to
    // completion before the other: the suite runs the chains right after
    // sustained SIMD benches, and back-to-back blocks would hand the two
    // arms systematically different clock/thermal states. Alternating
    // reps exposes both arms to the same conditions; best-of-3 then
    // discards the noisy rounds for each arm independently.
    let t0 = Instant::now();
    run_fused();
    let once = t0.elapsed().as_secs_f64().max(1e-7);
    run_eager();
    let iters = (0.08 / once).ceil().max(1.0) as usize;
    let mut t_fused = f64::INFINITY;
    let mut t_unfused = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            run_fused();
        }
        t_fused = t_fused.min(t.elapsed().as_secs_f64() / iters as f64);
        let t = Instant::now();
        for _ in 0..iters {
            run_eager();
        }
        t_unfused = t_unfused.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    let bytes = (4 * elems * (2 + adds)) as f64;
    ChainPoint {
        chain,
        elems,
        groups: 2 + adds,
        iters,
        fused_gbs: bytes / t_fused / 1e9,
        unfused_gbs: bytes / t_unfused / 1e9,
    }
}

/// One per-pipeline pilot measurement under both fusion modes.
struct FusionPilot {
    pipeline: Pipeline,
    steps: usize,
    fused_sps: f64,
    unfused_sps: f64,
}

/// Seconds for one 2-step pilot of `pipeline` (16 images, batch 8,
/// ResNet-18 width 2 — the golden-trace workload).
fn pilot_secs(pipeline: Pipeline) -> f64 {
    let encoder =
        Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8), 7).expect("encoder");
    let cfg = PretrainConfig {
        pipeline,
        precision_set: Some(PrecisionSet::range(6, 16).expect("valid range")),
        epochs: 1,
        batch_size: 8,
        lr: 0.02,
        seed: 7,
        ..Default::default()
    };
    let (train, _) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(16, 8));
    let mut trainer = SimclrTrainer::new(encoder, cfg).expect("trainer");
    let t = Instant::now();
    trainer.train(&train).expect("2-step pretrain");
    t.elapsed().as_secs_f64()
}

/// Times the 2-step pilot of `pipeline` with fusion forced on and off
/// (the override is thread-local and the trainer runs on this thread,
/// so the mode governs every chain flush of the run).
fn bench_fusion_pilot(pipeline: Pipeline) -> FusionPilot {
    let steps = 2;
    let timed = |mode: FusionMode| with_fusion_mode(mode, || pilot_secs(pipeline));
    timed(FusionMode::Fused); // warmup
    let fused = timed(FusionMode::Fused).min(timed(FusionMode::Fused));
    let unfused = timed(FusionMode::Unfused).min(timed(FusionMode::Unfused));
    FusionPilot {
        pipeline,
        steps,
        fused_sps: steps as f64 / fused,
        unfused_sps: steps as f64 / unfused,
    }
}

/// Measured machine ceilings the roofline model is built from.
struct Roofline {
    /// Peak multiply-add throughput across the pool, GFLOP/s.
    peak_gflops: f64,
    /// Sustained stream-triad bandwidth across the pool, GB/s.
    stream_gbs: f64,
}

impl Roofline {
    /// Arithmetic intensity of an `m`×`n`×`k` product in FLOPs per byte
    /// of unique f32 traffic (both operands plus the output).
    fn intensity(m: usize, n: usize, k: usize) -> f64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let bytes = 4.0 * (m * k + k * n + m * n) as f64;
        flops / bytes
    }

    /// Arithmetic intensity of an i8×i8→i32 product: one byte per
    /// operand element, four per accumulator.
    fn intensity_i8(m: usize, n: usize, k: usize) -> f64 {
        let ops = 2.0 * m as f64 * n as f64 * k as f64;
        let bytes = (m * k + k * n + 4 * m * n) as f64;
        ops / bytes
    }

    /// Roofline-attainable GFLOP/s at arithmetic intensity `ai`:
    /// `min(peak, ai x bandwidth)`.
    fn attainable(&self, ai: f64) -> f64 {
        self.peak_gflops.min(ai * self.stream_gbs)
    }
}

/// Lanes in the peak-compute microkernel: enough independent per-lane
/// accumulator chains to hide mul/add latency at any vector width the
/// autovectorizer picks (8 chains even at 512-bit vectors) while still
/// fitting the accumulators in registers.
const PEAK_LANES: usize = 128;

/// Multiply-add iterations per work item in the peak measurement.
const PEAK_REPS: u32 = 100_000;

/// One peak-compute work item: `PEAK_LANES` independent multiply-add
/// chains against broadcast constants (no per-lane operand loads, so
/// the loop is pure FP issue). Deliberately mul-then-add (two
/// instructions), not FMA — the gemm kernels' bitwise-determinism
/// contract forbids FMA contraction, so this measures the ceiling those
/// kernels can legally reach.
fn madd_chains(seed: f32) -> f32 {
    let mut acc = [0.0f32; PEAK_LANES];
    for (i, v) in acc.iter_mut().enumerate() {
        *v = seed + i as f32 * 1e-6;
    }
    for _ in 0..PEAK_REPS {
        for a in acc.iter_mut() {
            // Fixed point of x*c + d stays ~ d/(1-c): bounded forever.
            *a = *a * 0.999_999 + 1.0e-3;
        }
    }
    let mut sum = 0.0f32;
    for a in acc {
        sum += a;
    }
    sum
}

/// Measures peak multiply-add GFLOP/s across the worker pool: several
/// compute-bound items per thread, best of three passes.
fn measure_peak_gflops() -> f64 {
    let items = num_threads() * 8;
    let run = || {
        parallel_for_each(items, |i| {
            std::hint::black_box(madd_chains(1.0 + i as f32));
        })
    };
    run(); // warm up the pool and the frequency governor
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    let flops = items as f64 * PEAK_REPS as f64 * PEAK_LANES as f64 * 2.0;
    flops / best / 1e9
}

/// Measures sustained memory bandwidth with a stream-style triad
/// (`c = a + 3b`) over buffers far larger than the last-level cache,
/// parallelized across the pool. Counts 12 bytes of traffic per element
/// (two reads, one write; write-allocate traffic is ignored, as STREAM
/// does).
fn measure_stream_gbs() -> f64 {
    const LEN: usize = 8 * 1024 * 1024; // 32 MiB per buffer
    const CHUNK: usize = 64 * 1024;
    let a: Vec<f32> = (0..LEN).map(|i| (i % 17) as f32).collect();
    let b: Vec<f32> = (0..LEN).map(|i| (i % 13) as f32).collect();
    let mut c = vec![0.0f32; LEN];
    let run = |c: &mut [f32]| {
        parallel_chunks_mut(c, CHUNK, |ci, chunk| {
            let off = ci * CHUNK;
            let (a, b) = (&a[off..off + CHUNK], &b[off..off + CHUNK]);
            for i in 0..CHUNK {
                chunk[i] = a[i] + 3.0 * b[i];
            }
        })
    };
    run(&mut c); // warm up: page in all three buffers
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        run(&mut c);
        best = best.min(t.elapsed().as_secs_f64());
    }
    std::hint::black_box(&c);
    (12.0 * LEN as f64) / best / 1e9
}

/// Times the 2-step CQ-A pilot (the exact golden-trace workload:
/// 16 images, batch 8, ResNet-18 width 2) in the process-default fusion
/// mode and returns steps/sec — the legacy `pilot` section every older
/// artifact carries.
fn bench_pilot_steps() -> (usize, f64) {
    let steps = 2;
    pilot_secs(Pipeline::CqA); // warmup
    let secs = pilot_secs(Pipeline::CqA).min(pilot_secs(Pipeline::CqA));
    (steps, steps as f64 / secs)
}

/// First `model name` line of /proc/cpuinfo, or "unknown".
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|s| s.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_json(
    scale: Scale,
    points: &[Point],
    encoders: &[EncPoint],
    chains: &[ChainPoint],
    fusion_pilots: &[FusionPilot],
    roofline: &Roofline,
    pilot: (usize, f64),
) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(s, "  \"pr\": {PR},");
    let _ = writeln!(
        s,
        "  \"scale\": \"{}\",",
        if scale == Scale::Paper {
            "paper"
        } else {
            "quick"
        }
    );
    let _ = writeln!(s, "  \"unix_secs\": {unix_secs},");
    let _ = writeln!(s, "  \"machine\": {{");
    let _ = writeln!(s, "    \"os\": \"{}\",", esc(std::env::consts::OS));
    let _ = writeln!(s, "    \"arch\": \"{}\",", esc(std::env::consts::ARCH));
    let _ = writeln!(s, "    \"cpu\": \"{}\",", esc(&cpu_model()));
    let hw_threads = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    let _ = writeln!(s, "    \"threads\": {hw_threads},");
    let _ = writeln!(s, "    \"threads_effective\": {},", num_threads());
    let _ = writeln!(s, "    \"simd\": \"{}\"", esc(gemm::simd_level_name()));
    let _ = writeln!(s, "  }},");
    let _ = writeln!(
        s,
        "  \"roofline\": {{\"peak_gflops\": {:.3}, \"stream_gbs\": {:.3}}},",
        roofline.peak_gflops, roofline.stream_gbs
    );
    let _ = writeln!(s, "  \"kernels\": [");
    for (i, p) in points.iter().enumerate() {
        let speedup = p.gflops / p.ref_gflops;
        let ai = if p.kernel.starts_with("matmul_i8") {
            Roofline::intensity_i8(p.m, p.n, p.k)
        } else {
            Roofline::intensity(p.m, p.n, p.k)
        };
        let pct = 100.0 * p.gflops / roofline.attainable(ai);
        let _ = writeln!(
            s,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \"iters\": {}, \
             \"gflops\": {:.3}, \"ref_gflops\": {:.3}, \"speedup\": {:.3}, \
             \"ai\": {:.3}, \"roofline_pct\": {:.1}}}{}",
            p.kernel,
            p.m,
            p.n,
            p.k,
            p.iters,
            p.gflops,
            p.ref_gflops,
            speedup,
            ai,
            pct,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"int8_encoders\": [");
    for (i, e) in encoders.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"arch\": \"{:?}\", \"n\": {}, \"f32_imgs_per_sec\": {:.3}, \
             \"int8_imgs_per_sec\": {:.3}, \"ratio\": {:.3}}}{}",
            e.arch,
            e.n,
            e.f32_ips,
            e.int8_ips,
            e.int8_ips / e.f32_ips,
            if i + 1 < encoders.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"ew_chains\": [");
    for (i, c) in chains.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"chain\": \"{}\", \"elems\": {}, \"groups\": {}, \"iters\": {}, \
             \"fused_gbs\": {:.3}, \"unfused_gbs\": {:.3}, \"speedup\": {:.3}}}{}",
            c.chain,
            c.elems,
            c.groups,
            c.iters,
            c.fused_gbs,
            c.unfused_gbs,
            c.fused_gbs / c.unfused_gbs,
            if i + 1 < chains.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"fusion_pilots\": [");
    for (i, p) in fusion_pilots.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"pipeline\": \"{:?}\", \"steps\": {}, \"fused_steps_per_sec\": {:.3}, \
             \"unfused_steps_per_sec\": {:.3}, \"speedup\": {:.3}}}{}",
            p.pipeline,
            p.steps,
            p.fused_sps,
            p.unfused_sps,
            p.fused_sps / p.unfused_sps,
            if i + 1 < fusion_pilots.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(
        s,
        "  \"pilot\": {{\"steps\": {}, \"steps_per_sec\": {:.3}}}",
        pilot.0, pilot.1
    );
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let scale = Scale::from_args();
    let mut out_path = format!("BENCH_{PR}.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("kernels: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--scale" => {
                args.next(); // validated by Scale::from_args
            }
            other if other.starts_with("--scale=") => {}
            other if other.starts_with("--out=") => {
                out_path = other["--out=".len()..].to_string();
            }
            other => {
                eprintln!("kernels: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(0xBE7C);
    // Elementwise fusion: chain throughput at three chain depths (the
    // deeper the chain, the more full passes fusion elides). 512K
    // elements per tensor (2 MiB) spills L2 while staying below the
    // allocator's mmap threshold, so the eager arm's per-layer
    // materializations cost memory traffic, not page faults. This
    // section runs FIRST: it is the suite's only purely memory-bound
    // comparison, and running it on a fresh heap (before the gemm and
    // encoder sections grow and fragment the arena) keeps large
    // allocations hugepage-backed and the measurement reproducible.
    let chain_dims = [4usize, 32, 64, 64];
    let chains = vec![
        bench_ew_chain("bn_relu_q8", chain_dims, 0, &mut rng),
        bench_ew_chain("bn_add3_relu_q8", chain_dims, 3, &mut rng),
        bench_ew_chain("bn_add7_relu_q8", chain_dims, 7, &mut rng),
    ];
    for c in &chains {
        eprintln!(
            "  ew {:<16} {:>4} groups {:>8.2} GB/s fused (unfused {:>7.2}, x{:.2})",
            c.chain,
            c.groups,
            c.fused_gbs,
            c.unfused_gbs,
            c.fused_gbs / c.unfused_gbs
        );
    }
    // The 256-cube is the acceptance point (blocked >= 2x scalar); the
    // paper grid extends to 512 for the perf trajectory.
    let cubes: &[usize] = match scale {
        Scale::Quick => &[64, 128, 256],
        Scale::Paper => &[64, 128, 256, 384, 512],
    };
    let mut points = Vec::new();
    for &s in cubes {
        for kind in [Kind::Nn, Kind::Nt, Kind::Tn] {
            points.push(bench_matmul(kind, s, s, s, &mut rng));
        }
    }
    // One rectangular case per layout: backward-pass-like skinny shapes.
    points.push(bench_matmul(Kind::Nn, 64, 512, 128, &mut rng));
    points.push(bench_matmul(Kind::Nt, 128, 64, 512, &mut rng));
    points.push(bench_matmul(Kind::Tn, 64, 512, 128, &mut rng));
    // Conv hot paths at two widths.
    points.push(bench_conv(8, 16, 32, 32, &mut rng));
    points.push(bench_conv(16, 32, 16, 16, &mut rng));
    // Integer inference kernels: the i8 GEMM cubes (NN is the conv
    // lowering, NT the linear layout) plus one im2col-shaped rectangle.
    for &s in cubes {
        points.push(bench_matmul_i8(IntKind::Nn, s, s, s, &mut rng));
        points.push(bench_matmul_i8(IntKind::Nt, s, s, s, &mut rng));
    }
    points.push(bench_matmul_i8(IntKind::Nn, 32, 256, 72, &mut rng));

    for p in &points {
        eprintln!(
            "  {:>9} {:>4}x{:<4}x{:<4} {:>8.2} GFLOP/s (ref {:>7.2}, x{:.2})",
            p.kernel,
            p.m,
            p.n,
            p.k,
            p.gflops,
            p.ref_gflops,
            p.gflops / p.ref_gflops
        );
    }
    // The compute ceiling is the mul-add microbenchmark, raised to the
    // fastest observed kernel point when a kernel beats it — a gemm with
    // deeper ILP than the chain microkernel is itself a demonstration of
    // what the machine sustains, and the ceiling must bound the evidence.
    let micro_peak = measure_peak_gflops();
    // Integer GOP/s points are excluded: the mul-add roofline is an FP
    // ceiling and i8 kernels can legitimately exceed it.
    let best_kernel = points
        .iter()
        .filter(|p| !p.kernel.starts_with("matmul_i8"))
        .map(|p| p.gflops)
        .fold(0.0, f64::max);
    let roofline = Roofline {
        peak_gflops: micro_peak.max(best_kernel),
        stream_gbs: measure_stream_gbs(),
    };
    eprintln!(
        "  roofline: {:.2} GFLOP/s mul-add peak, {:.2} GB/s stream ({} simd, {} thread(s))",
        roofline.peak_gflops,
        roofline.stream_gbs,
        gemm::simd_level_name(),
        num_threads()
    );
    let enc_archs: &[Arch] = match scale {
        Scale::Quick => &[Arch::ResNet18, Arch::MobileNetV2],
        Scale::Paper => &[Arch::ResNet18, Arch::ResNet34, Arch::MobileNetV2],
    };
    let encoders: Vec<EncPoint> = enc_archs
        .iter()
        .map(|&arch| bench_int8_encoder(arch, 0xC0DE))
        .collect();
    for e in &encoders {
        eprintln!(
            "  int8 {:?}: f32 {:.1} imgs/s | int8 {:.1} imgs/s (x{:.2})",
            e.arch,
            e.f32_ips,
            e.int8_ips,
            e.int8_ips / e.f32_ips
        );
    }
    let fusion_pilots: Vec<FusionPilot> = [Pipeline::CqA, Pipeline::CqB, Pipeline::CqC]
        .into_iter()
        .map(bench_fusion_pilot)
        .collect();
    for p in &fusion_pilots {
        eprintln!(
            "  2-step {:?} pilot: {:.2} steps/sec fused (unfused {:.2}, x{:.2})",
            p.pipeline,
            p.fused_sps,
            p.unfused_sps,
            p.fused_sps / p.unfused_sps
        );
    }
    let pilot = bench_pilot_steps();
    eprintln!("  2-step CQ-A pilot: {:.2} steps/sec", pilot.1);

    let json = render_json(
        scale,
        &points,
        &encoders,
        &chains,
        &fusion_pilots,
        &roofline,
        pilot,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("kernels: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({} grid points)", points.len());
}
