//! `cq-bench kernels` — measured kernel throughput, written as a
//! schema-versioned `BENCH_<pr>.json` so every PR's speed claim is a
//! committed artifact instead of a sentence.
//!
//! For each kernel (`matmul`, `matmul_nt`, `matmul_tn`, `conv2d`) across
//! a fixed size grid, reports blocked GFLOP/s, the pre-rewrite scalar
//! baseline GFLOP/s (the unblocked reference kernels dispatched exactly
//! as the old `Tensor::matmul*` were), and the speedup — both sides
//! timed in-process at the same thread count, so the ratio isolates the
//! kernel change. Also times a 2-step CQ-A pilot (the golden-trace
//! workload) in steps/sec, plus machine/thread metadata so `cq-trace
//! bench-diff` can refuse to hard-gate across different hardware.
//!
//! ```text
//! kernels [--scale quick|paper] [--out BENCH_7.json]
//! ```

use cq_bench::Scale;
use cq_core::{Pipeline, PretrainConfig, SimclrTrainer};
use cq_data::{Dataset, DatasetConfig};
use cq_models::{Arch, Encoder, EncoderConfig};
use cq_quant::PrecisionSet;
use cq_tensor::gemm::{self, Kind};
use cq_tensor::par::num_threads;
use cq_tensor::{im2col, Conv2dSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema identifier checked by `cq-trace bench-check` / `bench-diff`.
const SCHEMA: &str = "cq-bench-kernels/v1";

/// This PR's artifact number.
const PR: u32 = 7;

/// One measured grid point.
struct Point {
    kernel: &'static str,
    m: usize,
    n: usize,
    k: usize,
    iters: usize,
    gflops: f64,
    ref_gflops: f64,
}

/// Times `f` (already warmed up): picks an iteration count that makes one
/// rep last ~80 ms, runs three reps, returns best seconds-per-call.
fn time_best(mut f: impl FnMut()) -> (f64, usize) {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-7);
    let iters = (0.08 / once).ceil().max(1.0) as usize;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    (best, iters)
}

fn randvec(len: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Measures one matmul layout at `m`×`n`×`k`: blocked kernel vs the
/// pre-rewrite parallel reference, same data, same thread count.
fn bench_matmul(kind: Kind, m: usize, n: usize, k: usize, rng: &mut StdRng) -> Point {
    let (alen, blen) = match kind {
        Kind::Nn => (m * k, k * n),
        Kind::Nt => (m * k, n * k),
        Kind::Tn => (k * m, k * n),
    };
    let a = randvec(alen, rng);
    let b = randvec(blen, rng);
    let mut out = vec![0.0f32; m * n];
    let flops = 2.0 * m as f64 * n as f64 * k as f64;

    let (t_blocked, iters) = time_best(|| gemm::par_gemm(kind, &a, &b, m, n, k, &mut out));
    let (t_ref, _) = time_best(|| gemm::reference::par_gemm_ref(kind, &a, &b, m, n, k, &mut out));

    Point {
        kernel: match kind {
            Kind::Nn => "matmul",
            Kind::Nt => "matmul_nt",
            Kind::Tn => "matmul_tn",
        },
        m,
        n,
        k,
        iters,
        gflops: flops / t_blocked / 1e9,
        ref_gflops: flops / t_ref / 1e9,
    }
}

/// Measures a per-sample dense conv forward (im2col + NN product, the
/// Conv2d band-worker hot path) for a `c`→`o` layer on an `h`×`w` input.
/// `m`/`n`/`k` record the lowered product shape. Both sides share the new
/// im2col, so the ratio isolates the GEMM.
fn bench_conv(c: usize, o: usize, h: usize, w: usize, rng: &mut StdRng) -> Point {
    let spec = Conv2dSpec::new(3, 1, 1);
    let (oh, ow) = spec.out_hw(h, w).expect("conv geometry");
    let ckk = spec.col_rows(c);
    let x = randvec(c * h * w, rng);
    let wgt = randvec(o * ckk, rng);
    let mut cols = vec![0.0f32; ckk * oh * ow];
    let mut out = vec![0.0f32; o * oh * ow];
    let flops = 2.0 * (o * ckk * oh * ow) as f64;

    let (t_blocked, iters) = time_best(|| {
        im2col(&x, c, h, w, &spec, &mut cols);
        gemm::gemm_nn(&wgt, o, ckk, &cols, oh * ow, &mut out);
    });
    let (t_ref, _) = time_best(|| {
        im2col(&x, c, h, w, &spec, &mut cols);
        gemm::reference::gemm_nn(&wgt, o, ckk, &cols, oh * ow, &mut out);
    });

    Point {
        kernel: "conv2d",
        m: o,
        n: oh * ow,
        k: ckk,
        iters,
        gflops: flops / t_blocked / 1e9,
        ref_gflops: flops / t_ref / 1e9,
    }
}

/// Times the 2-step CQ-A pilot (the exact golden-trace workload:
/// 16 images, batch 8, ResNet-18 width 2) and returns steps/sec.
fn bench_pilot_steps() -> (usize, f64) {
    let steps = 2;
    let run = || {
        let encoder = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8), 7)
            .expect("encoder");
        let cfg = PretrainConfig {
            pipeline: Pipeline::CqA,
            precision_set: Some(PrecisionSet::range(6, 16).expect("valid range")),
            epochs: 1,
            batch_size: 8,
            lr: 0.02,
            seed: 7,
            ..Default::default()
        };
        let (train, _) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(16, 8));
        let mut trainer = SimclrTrainer::new(encoder, cfg).expect("trainer");
        let t = Instant::now();
        trainer.train(&train).expect("2-step pretrain");
        t.elapsed().as_secs_f64()
    };
    run(); // warmup
    let secs = run().min(run());
    (steps, steps as f64 / secs)
}

/// First `model name` line of /proc/cpuinfo, or "unknown".
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|s| s.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_json(scale: Scale, points: &[Point], pilot: (usize, f64)) -> String {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(s, "  \"pr\": {PR},");
    let _ = writeln!(
        s,
        "  \"scale\": \"{}\",",
        if scale == Scale::Paper {
            "paper"
        } else {
            "quick"
        }
    );
    let _ = writeln!(s, "  \"unix_secs\": {unix_secs},");
    let _ = writeln!(s, "  \"machine\": {{");
    let _ = writeln!(s, "    \"os\": \"{}\",", esc(std::env::consts::OS));
    let _ = writeln!(s, "    \"arch\": \"{}\",", esc(std::env::consts::ARCH));
    let _ = writeln!(s, "    \"cpu\": \"{}\",", esc(&cpu_model()));
    let _ = writeln!(s, "    \"threads\": {}", num_threads());
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"kernels\": [");
    for (i, p) in points.iter().enumerate() {
        let speedup = p.gflops / p.ref_gflops;
        let _ = writeln!(
            s,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \"iters\": {}, \
             \"gflops\": {:.3}, \"ref_gflops\": {:.3}, \"speedup\": {:.3}}}{}",
            p.kernel,
            p.m,
            p.n,
            p.k,
            p.iters,
            p.gflops,
            p.ref_gflops,
            speedup,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(
        s,
        "  \"pilot\": {{\"steps\": {}, \"steps_per_sec\": {:.3}}}",
        pilot.0, pilot.1
    );
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let scale = Scale::from_args();
    let mut out_path = format!("BENCH_{PR}.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("kernels: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--scale" => {
                args.next(); // validated by Scale::from_args
            }
            other if other.starts_with("--scale=") => {}
            other if other.starts_with("--out=") => {
                out_path = other["--out=".len()..].to_string();
            }
            other => {
                eprintln!("kernels: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(0xBE7C);
    // The 256-cube is the acceptance point (blocked >= 2x scalar); the
    // paper grid extends to 512 for the perf trajectory.
    let cubes: &[usize] = match scale {
        Scale::Quick => &[64, 128, 256],
        Scale::Paper => &[64, 128, 256, 384, 512],
    };
    let mut points = Vec::new();
    for &s in cubes {
        for kind in [Kind::Nn, Kind::Nt, Kind::Tn] {
            points.push(bench_matmul(kind, s, s, s, &mut rng));
        }
    }
    // One rectangular case per layout: backward-pass-like skinny shapes.
    points.push(bench_matmul(Kind::Nn, 64, 512, 128, &mut rng));
    points.push(bench_matmul(Kind::Nt, 128, 64, 512, &mut rng));
    points.push(bench_matmul(Kind::Tn, 64, 512, 128, &mut rng));
    // Conv hot paths at two widths.
    points.push(bench_conv(8, 16, 32, 32, &mut rng));
    points.push(bench_conv(16, 32, 16, 16, &mut rng));

    for p in &points {
        eprintln!(
            "  {:>9} {:>4}x{:<4}x{:<4} {:>8.2} GFLOP/s (ref {:>7.2}, x{:.2})",
            p.kernel,
            p.m,
            p.n,
            p.k,
            p.gflops,
            p.ref_gflops,
            p.gflops / p.ref_gflops
        );
    }
    let pilot = bench_pilot_steps();
    eprintln!("  2-step CQ-A pilot: {:.2} steps/sec", pilot.1);

    let json = render_json(scale, &points, pilot);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("kernels: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({} grid points)", points.len());
}
