//! Table 4: CQ-C (precision set 6-16) vs SimCLR on the CIFAR-like config
//! across all six networks, fine-tuning with 10%/1% labels at FP/4-bit.

use cq_bench::{finetune_grid, fmt_acc, pretrain_simclr_cached, Protocol, Regime, Scale};
use cq_core::Pipeline;
use cq_eval::Table;
use cq_models::Arch;
use cq_quant::PrecisionSet;

/// Short cache tag for an architecture.
fn arch_tag(arch: Arch) -> &'static str {
    match arch {
        Arch::ResNet18 => "r18",
        Arch::ResNet34 => "r34",
        Arch::ResNet74 => "r74",
        Arch::ResNet110 => "r110",
        Arch::ResNet152 => "r152",
        Arch::MobileNetV2 => "mnv2",
    }
}

fn main() {
    let scale = Scale::from_args();
    let proto = Protocol::new(Regime::CifarLike, scale);
    let (train, test) = proto.datasets();
    let scale_tag = if scale == Scale::Paper {
        "paper"
    } else {
        "quick"
    };

    let mut table = Table::new(
        "Table 4: CQ-C vs SimCLR on six networks (CIFAR-like, fine-tuning)",
        &[
            "Network",
            "Method",
            "FP 10%",
            "FP 1%",
            "4-bit 10%",
            "4-bit 1%",
        ],
    );
    for arch in Arch::all() {
        for (name, pipeline, pset) in [
            ("SimCLR", Pipeline::Baseline, None),
            (
                "CQ-C",
                Pipeline::CqC,
                Some(PrecisionSet::range(6, 16).expect("valid")),
            ),
        ] {
            let tag = format!("ci-{}-{}-{scale_tag}", arch_tag(arch), name.to_lowercase());
            let (enc, _) = pretrain_simclr_cached(&tag, arch, pipeline, pset, &proto, &train)
                .expect("pretraining failed");
            let grid = finetune_grid(&enc, &train, &test, &proto).expect("fine-tuning failed");
            table.row_owned(vec![
                arch.name().into(),
                name.into(),
                fmt_acc(grid.fp10),
                fmt_acc(grid.fp1),
                fmt_acc(grid.q10),
                fmt_acc(grid.q1),
            ]);
            eprintln!("  {arch} {name}: done");
        }
    }
    table.print();
    let _ = table.write_csv(std::path::Path::new("table4.csv"));
}
