//! Table 3: transfer of the ImageNet-like pretrained encoders to the
//! synthetic detection task (Pascal VOC stand-in), reporting
//! AP / AP50 / AP75. Reuses the cached Table 1 encoders.

use cq_bench::{fmt_acc, pretrain_simclr_cached, Protocol, Regime, Scale};
use cq_core::Pipeline;
use cq_detect::{train_detector, DetDataset, DetectionConfig, DetectorConfig};
use cq_eval::Table;
use cq_models::Arch;
use cq_quant::PrecisionSet;

fn main() {
    let scale = Scale::from_args();
    let proto = Protocol::new(Regime::ImagenetLike, scale);
    let (ssl_train, _) = proto.datasets();
    let scale_tag = if scale == Scale::Paper {
        "paper"
    } else {
        "quick"
    };

    let det_cfg = match scale {
        Scale::Quick => DetectionConfig::default().with_sizes(256, 96),
        Scale::Paper => DetectionConfig::default().with_sizes(1024, 256),
    };
    let (det_train, det_test) = DetDataset::generate(&det_cfg);
    let trainer_cfg = DetectorConfig {
        epochs: if scale == Scale::Paper { 30 } else { 10 },
        batch_size: 32,
        ..Default::default()
    };

    let mut table = Table::new(
        "Table 3: Transfer to the detection task (AP / AP50 / AP75)",
        &["Network", "Method", "AP", "AP50", "AP75"],
    );
    for arch in [Arch::ResNet18, Arch::ResNet34] {
        let arch_tag = if arch == Arch::ResNet18 { "r18" } else { "r34" };
        let methods: [(&str, Pipeline, Option<PrecisionSet>); 3] = [
            ("Vanilla SimCLR", Pipeline::Baseline, None),
            (
                "CQ-C",
                Pipeline::CqC,
                Some(PrecisionSet::range(8, 16).expect("valid")),
            ),
            (
                "CQ-A",
                Pipeline::CqA,
                Some(PrecisionSet::range(6, 16).expect("valid")),
            ),
        ];
        for (name, pipeline, pset) in methods {
            let short = match name {
                "Vanilla SimCLR" => "simclr",
                "CQ-C" => "cq-c",
                _ => "cq-a",
            };
            let tag = format!("in-{arch_tag}-{short}-{scale_tag}");
            let (enc, _) = pretrain_simclr_cached(&tag, arch, pipeline, pset, &proto, &ssl_train)
                .expect("pretraining failed");
            let m = train_detector(&enc, &det_train, &det_test, &trainer_cfg)
                .expect("detector training failed");
            table.row_owned(vec![
                arch.name().into(),
                name.into(),
                fmt_acc(m.ap),
                fmt_acc(m.ap50),
                fmt_acc(m.ap75),
            ]);
            eprintln!("  {arch} {name}: {m}");
        }
    }
    table.print();
    let _ = table.write_csv(std::path::Path::new("table3.csv"));
}
