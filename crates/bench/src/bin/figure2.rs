//! Figure 2: t-SNE visualisation of the learned representations.
//!
//! Embeds the test-set features of the SimCLR- and Contrastive-Quant-
//! trained encoders with exact t-SNE, dumps the 2-D embeddings (+labels)
//! to CSV for plotting, and prints the quantitative separability metrics
//! that correspond to the paper's visual claim ("better linear
//! separability, especially under larger models").

use cq_bench::{fmt_acc, pretrain_simclr_cached, Protocol, Regime, Scale};
use cq_core::{extract_features, Pipeline};
use cq_eval::{knn_accuracy, separability_ratio, tsne, Table, TsneConfig};
use cq_models::Arch;
use cq_quant::PrecisionSet;
use std::io::Write as _;

fn main() {
    let scale = Scale::from_args();
    let proto = Protocol::new(Regime::CifarLike, scale);
    let (train, test) = proto.datasets();
    let scale_tag = if scale == Scale::Paper {
        "paper"
    } else {
        "quick"
    };

    let mut table = Table::new(
        "Figure 2: representation separability (t-SNE embedding metrics)",
        &[
            "Network",
            "Method",
            "kNN acc (features)",
            "kNN acc (t-SNE 2-D)",
            "Separability ratio",
        ],
    );
    for (arch, at) in [(Arch::ResNet18, "r18"), (Arch::ResNet34, "r34")] {
        for (name, pipeline, pset) in [
            ("SimCLR", Pipeline::Baseline, None),
            (
                "CQ-C",
                Pipeline::CqC,
                Some(PrecisionSet::range(6, 16).expect("valid")),
            ),
        ] {
            let tag = format!("ci-{at}-{}-{scale_tag}", name.to_lowercase());
            let (mut enc, _) = pretrain_simclr_cached(&tag, arch, pipeline, pset, &proto, &train)
                .expect("pretraining failed");
            let (feats, labels) = extract_features(&mut enc, &test, 64).expect("features");
            let emb = tsne(
                &feats,
                &TsneConfig {
                    iterations: 400,
                    perplexity: 12.0,
                    lr: 50.0,
                    ..Default::default()
                },
            );

            // dump embedding CSV: x,y,label
            let fname = format!("figure2_{at}_{}.csv", name.to_lowercase().replace('-', ""));
            let mut f = std::fs::File::create(&fname).expect("csv");
            writeln!(f, "x,y,label").unwrap();
            for (i, &lab) in labels.iter().enumerate() {
                writeln!(
                    f,
                    "{},{},{}",
                    emb.as_slice()[i * 2],
                    emb.as_slice()[i * 2 + 1],
                    lab
                )
                .unwrap();
            }

            table.row_owned(vec![
                arch.name().into(),
                name.into(),
                fmt_acc(knn_accuracy(&feats, &labels, 5)),
                fmt_acc(knn_accuracy(&emb, &labels, 5)),
                format!("{:.3}", separability_ratio(&feats, &labels)),
            ]);
            eprintln!("  {arch} {name}: embedded -> {fname}");
        }
    }
    table.print();
    let _ = table.write_csv(std::path::Path::new("figure2.csv"));
}
