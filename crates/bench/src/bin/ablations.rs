//! Design-choice ablations beyond the paper's tables (DESIGN.md §6):
//!
//! 1. **Perturbation kind** — Gaussian weight noise (Noise-A/Noise-C, the
//!    paper's stated future-work direction) vs quantization (CQ-C) vs
//!    no model-side augmentation (SimCLR).
//! 2. **Quantizer rounding** — round-to-nearest vs the paper's literal
//!    floor notation (Eq. 10).
//! 3. **Precision sampling** — the paper's uniform draws vs a CPT-style
//!    cyclic schedule (its ref 3).
//!
//! All runs share the Table 4 protocol on ResNet-18 / CIFAR-like and reuse
//! its encoder cache where applicable.

use cq_bench::{
    finetune_grid, fmt_acc, linear_probe, pretrain_simclr_cached, Protocol, Regime, Scale,
};
use cq_core::{Pipeline, PrecisionSampling, PretrainConfig, SimclrTrainer};
use cq_eval::Table;
use cq_models::{Arch, Encoder};
use cq_quant::{PrecisionSet, QuantMode};

fn main() {
    let scale = Scale::from_args();
    let proto = Protocol::new(Regime::CifarLike, scale);
    let (train, test) = proto.datasets();
    let scale_tag = if scale == Scale::Paper {
        "paper"
    } else {
        "quick"
    };
    let pset = PrecisionSet::range(6, 16).expect("valid");

    let run_custom = |cfg: PretrainConfig| -> Encoder {
        let enc = Encoder::new(&proto.encoder_cfg(Arch::ResNet18), proto.seed).expect("encoder");
        let mut t = SimclrTrainer::new(enc, cfg).expect("trainer");
        t.train(&train).expect("training");
        t.into_encoder()
    };

    // ------------------------------------------------------------------
    // 1. Perturbation kind
    // ------------------------------------------------------------------
    let mut t1 = Table::new(
        "Ablation: model-side perturbation kind (ResNet-18, CIFAR-like)",
        &[
            "Method",
            "FP 10%",
            "FP 1%",
            "4-bit 10%",
            "4-bit 1%",
            "Linear",
        ],
    );
    // cached baseline + CQ-C rows
    for (name, pipeline) in [("SimCLR", Pipeline::Baseline), ("CQ-C", Pipeline::CqC)] {
        let tag = format!("ci-r18-{}-{scale_tag}", name.to_lowercase());
        let (mut enc, _) = pretrain_simclr_cached(
            &tag,
            Arch::ResNet18,
            pipeline,
            pipeline.needs_precisions().then(|| pset.clone()),
            &proto,
            &train,
        )
        .expect("pretraining failed");
        let grid = finetune_grid(&enc, &train, &test, &proto).expect("ft");
        let lin = linear_probe(&mut enc, &train, &test, &proto).expect("linear");
        t1.row_owned(vec![
            name.into(),
            fmt_acc(grid.fp10),
            fmt_acc(grid.fp1),
            fmt_acc(grid.q10),
            fmt_acc(grid.q1),
            fmt_acc(lin),
        ]);
    }
    for pipeline in Pipeline::extensions() {
        eprintln!("  [train] {pipeline}");
        let mut enc = run_custom(PretrainConfig {
            pipeline,
            noise_std: 0.05,
            ..proto.pretrain_cfg(Pipeline::Baseline, None)
        });
        let grid = finetune_grid(&enc, &train, &test, &proto).expect("ft");
        let lin = linear_probe(&mut enc, &train, &test, &proto).expect("linear");
        t1.row_owned(vec![
            pipeline.name().into(),
            fmt_acc(grid.fp10),
            fmt_acc(grid.fp1),
            fmt_acc(grid.q10),
            fmt_acc(grid.q1),
            fmt_acc(lin),
        ]);
    }
    t1.print();

    // ------------------------------------------------------------------
    // 2. Rounding mode
    // ------------------------------------------------------------------
    let mut t2 = Table::new(
        "Ablation: quantizer rounding mode (CQ-C, ResNet-18)",
        &["Mode", "FP 10%", "FP 1%", "Linear"],
    );
    for (name, mode) in [
        ("Round (default)", QuantMode::Round),
        ("Floor (literal Eq. 10)", QuantMode::Floor),
    ] {
        eprintln!("  [train] mode {name}");
        let mut enc = run_custom(PretrainConfig {
            quant_mode: mode,
            ..proto.pretrain_cfg(Pipeline::CqC, Some(pset.clone()))
        });
        let grid = finetune_grid(&enc, &train, &test, &proto).expect("ft");
        let lin = linear_probe(&mut enc, &train, &test, &proto).expect("linear");
        t2.row_owned(vec![
            name.into(),
            fmt_acc(grid.fp10),
            fmt_acc(grid.fp1),
            fmt_acc(lin),
        ]);
    }
    t2.print();

    // ------------------------------------------------------------------
    // 3. Precision sampling
    // ------------------------------------------------------------------
    let mut t3 = Table::new(
        "Ablation: precision-pair sampling (CQ-C, ResNet-18)",
        &["Sampling", "FP 10%", "FP 1%", "Linear"],
    );
    for (name, sampling) in [
        ("Uniform (paper)", PrecisionSampling::Uniform),
        ("Cyclic (CPT-style)", PrecisionSampling::Cyclic),
    ] {
        eprintln!("  [train] sampling {name}");
        let mut enc = run_custom(PretrainConfig {
            sampling,
            ..proto.pretrain_cfg(Pipeline::CqC, Some(pset.clone()))
        });
        let grid = finetune_grid(&enc, &train, &test, &proto).expect("ft");
        let lin = linear_probe(&mut enc, &train, &test, &proto).expect("linear");
        t3.row_owned(vec![
            name.into(),
            fmt_acc(grid.fp10),
            fmt_acc(grid.fp1),
            fmt_acc(lin),
        ]);
    }
    t3.print();
}
