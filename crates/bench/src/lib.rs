//! # cq-bench
//!
//! Experiment harness regenerating every table and figure of the paper
//! (see DESIGN.md §4 for the experiment index). The binaries in
//! `src/bin/` print paper-style markdown tables; the criterion benches in
//! `benches/` measure component throughput.
//!
//! ## Scale
//!
//! Every binary accepts `--scale quick|paper` (or the `CQ_SCALE` env
//! var). `quick` — the default — targets minutes per table on a laptop;
//! `paper` runs longer for tighter numbers. Both run the *same* protocol,
//! only sizes change, and all methods within a table always share sizes,
//! seeds and data so comparisons stay fair.

#![deny(missing_docs)]

pub mod parity;

use cq_core::{ByolTrainer, Pipeline, PretrainConfig, SimclrTrainer};
use cq_data::{Dataset, DatasetConfig};
use cq_eval::{finetune, linear_eval, FinetuneConfig, LinearEvalConfig};
use cq_models::{Arch, Encoder, EncoderConfig};
use cq_nn::NnError;
use cq_quant::{Precision, PrecisionSet};

/// Run scale: quick (CI/laptop) or paper (longer, tighter numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes per table.
    Quick,
    /// Tens of minutes per table.
    Paper,
}

impl Scale {
    /// Parses a scale name: exactly `quick` or `paper`, case-insensitive
    /// (`full` is accepted as a legacy alias for `paper`). Anything else
    /// is an error — a typo'd scale must never silently run `quick`.
    ///
    /// # Errors
    ///
    /// Returns the rejection message shown to the user.
    pub fn try_parse(v: &str) -> std::result::Result<Scale, String> {
        match v.to_ascii_lowercase().as_str() {
            "quick" => Ok(Scale::Quick),
            "paper" | "full" => Ok(Scale::Paper),
            _ => Err(format!("invalid scale `{v}`: expected `quick` or `paper`")),
        }
    }

    /// Parses `--scale` from argv, falling back to the `CQ_SCALE` env var
    /// and then to `Quick`. Exits with code 2 on an invalid value.
    pub fn from_args() -> Scale {
        let env = std::env::var("CQ_SCALE").ok();
        match Scale::resolve(std::env::args().skip(1), env.as_deref()) {
            Ok(s) => s,
            Err(msg) => {
                eprintln!("cq-bench: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Pure resolution logic behind [`Scale::from_args`]: the `--scale`
    /// flag wins over the `CQ_SCALE` env value; both must parse exactly;
    /// with neither present the default is `Quick`.
    fn resolve(
        args: impl Iterator<Item = String>,
        env: Option<&str>,
    ) -> std::result::Result<Scale, String> {
        let mut args = args;
        while let Some(a) = args.next() {
            if a == "--scale" {
                let v = args
                    .next()
                    .ok_or_else(|| "--scale needs a value (quick|paper)".to_string())?;
                return Scale::try_parse(&v);
            } else if let Some(v) = a.strip_prefix("--scale=") {
                return Scale::try_parse(v);
            }
        }
        match env {
            Some(v) => Scale::try_parse(v).map_err(|e| format!("CQ_SCALE: {e}")),
            None => Ok(Scale::Quick),
        }
    }
}

/// The two dataset regimes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// CIFAR-100 stand-in: small, low-diversity.
    CifarLike,
    /// ImageNet stand-in: larger, higher-diversity.
    ImagenetLike,
}

/// All sizes of one experiment protocol (shared across methods so
/// comparisons are fair).
#[derive(Debug, Clone, PartialEq)]
pub struct Protocol {
    /// Dataset configuration.
    pub data: DatasetConfig,
    /// Backbone width.
    pub width: usize,
    /// Projection head (hidden, out).
    pub proj: (usize, usize),
    /// SSL pre-training epochs.
    pub pretrain_epochs: usize,
    /// SSL batch size.
    pub batch_size: usize,
    /// SSL learning rate.
    pub pretrain_lr: f32,
    /// Fine-tuning epochs.
    pub ft_epochs: usize,
    /// Linear-eval epochs.
    pub linear_epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Protocol {
    /// Standard protocol for a regime at a scale.
    pub fn new(regime: Regime, scale: Scale) -> Protocol {
        let (data, width) = match regime {
            Regime::CifarLike => (DatasetConfig::cifarlike(), 8),
            Regime::ImagenetLike => (DatasetConfig::imagenetlike(), 8),
        };
        let (data, pretrain_epochs, ft_epochs, linear_epochs) = match scale {
            Scale::Quick => {
                let (tr, te) = match regime {
                    Regime::CifarLike => (512, 192),
                    Regime::ImagenetLike => (640, 192),
                };
                (data.with_sizes(tr, te), 8, 8, 25)
            }
            Scale::Paper => {
                let (tr, te) = match regime {
                    Regime::CifarLike => (2048, 512),
                    Regime::ImagenetLike => (4096, 1024),
                };
                (data.with_sizes(tr, te), 40, 30, 60)
            }
        };
        Protocol {
            data,
            width,
            proj: (64, 32),
            pretrain_epochs,
            batch_size: 128,
            pretrain_lr: 0.2,
            ft_epochs,
            linear_epochs,
            seed: 0xC0DE,
        }
    }

    /// Generates the train/test splits for this protocol.
    pub fn datasets(&self) -> (Dataset, Dataset) {
        Dataset::generate(&self.data)
    }

    /// Backbone width for an architecture: the deep 3-stage CIFAR ResNets
    /// (74/110/152) run at half width so the single-core experiment budget
    /// stays sane; comparisons are always within an architecture row, so
    /// this does not affect any method-vs-method conclusion.
    pub fn width_for(&self, arch: Arch) -> usize {
        match arch {
            Arch::ResNet74 | Arch::ResNet110 | Arch::ResNet152 => (self.width / 2).max(2),
            _ => self.width,
        }
    }

    /// Encoder configuration for a SimCLR run.
    pub fn encoder_cfg(&self, arch: Arch) -> EncoderConfig {
        EncoderConfig::new(arch, self.width_for(arch)).with_proj(self.proj.0, self.proj.1)
    }

    /// Encoder configuration for a BYOL run.
    pub fn byol_encoder_cfg(&self, arch: Arch) -> EncoderConfig {
        EncoderConfig::new(arch, self.width_for(arch)).with_byol_proj(self.proj.0, self.proj.1)
    }

    /// Pre-training configuration for a pipeline.
    pub fn pretrain_cfg(&self, pipeline: Pipeline, pset: Option<PrecisionSet>) -> PretrainConfig {
        PretrainConfig {
            pipeline,
            precision_set: pset,
            epochs: self.pretrain_epochs,
            batch_size: self.batch_size,
            lr: self.pretrain_lr,
            momentum: 0.9,
            weight_decay: 1e-4,
            temperature: 0.5,
            ema_tau: 0.99,
            explosion_threshold: 1e4,
            quant_mode: cq_quant::QuantMode::Round,
            sampling: cq_core::PrecisionSampling::Uniform,
            noise_std: 0.05,
            seed: self.seed,
        }
    }
}

/// Pre-trains an encoder with SimCLR + the given pipeline; returns the
/// encoder and the explosion rate (diagnostics for CQ-B).
///
/// # Errors
///
/// Propagates training errors.
pub fn pretrain_simclr(
    arch: Arch,
    pipeline: Pipeline,
    pset: Option<PrecisionSet>,
    proto: &Protocol,
    train: &Dataset,
) -> Result<(Encoder, f32), NnError> {
    let enc = Encoder::new(&proto.encoder_cfg(arch), proto.seed)?;
    let mut trainer = SimclrTrainer::new(enc, proto.pretrain_cfg(pipeline, pset))?;
    trainer.train(train)?;
    let explosion = trainer.history().explosion_rate();
    Ok((trainer.into_encoder(), explosion))
}

/// Pre-trains an encoder with BYOL + the given pipeline.
///
/// # Errors
///
/// Propagates training errors.
pub fn pretrain_byol(
    arch: Arch,
    pipeline: Pipeline,
    pset: Option<PrecisionSet>,
    proto: &Protocol,
    train: &Dataset,
) -> Result<(Encoder, f32), NnError> {
    let enc = Encoder::new(&proto.byol_encoder_cfg(arch), proto.seed)?;
    let mut trainer = ByolTrainer::new(enc, proto.pretrain_cfg(pipeline, pset))?;
    trainer.train(train)?;
    let explosion = trainer.history().explosion_rate();
    Ok((trainer.into_encoder(), explosion))
}

/// The fine-tuning accuracy grid of the paper's tables:
/// (FP 10%, FP 1%, 4-bit 10%, 4-bit 1%).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtGrid {
    /// Full-precision fine-tuning, 10% labels.
    pub fp10: f32,
    /// Full-precision fine-tuning, 1% labels.
    pub fp1: f32,
    /// 4-bit fine-tuning, 10% labels.
    pub q10: f32,
    /// 4-bit fine-tuning, 1% labels.
    pub q1: f32,
}

/// Runs the paper's 2×2 fine-tuning grid on a pretrained encoder.
///
/// # Errors
///
/// Propagates training errors.
pub fn finetune_grid(
    encoder: &Encoder,
    train: &Dataset,
    test: &Dataset,
    proto: &Protocol,
) -> Result<FtGrid, NnError> {
    let run = |precision: Precision, fraction: f32| -> Result<f32, NnError> {
        let cfg = FinetuneConfig {
            label_fraction: fraction,
            precision,
            epochs: proto.ft_epochs,
            batch_size: 64,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: proto.seed ^ 0xF1,
        };
        Ok(finetune(encoder, train, test, &cfg)?.test_acc)
    };
    Ok(FtGrid {
        fp10: run(Precision::Fp, 0.1)?,
        fp1: run(Precision::Fp, 0.01)?,
        q10: run(Precision::Bits(4), 0.1)?,
        q1: run(Precision::Bits(4), 0.01)?,
    })
}

/// Linear evaluation with the protocol's settings.
///
/// # Errors
///
/// Propagates training errors.
pub fn linear_probe(
    encoder: &mut Encoder,
    train: &Dataset,
    test: &Dataset,
    proto: &Protocol,
) -> Result<f32, NnError> {
    linear_eval(
        encoder,
        train,
        test,
        &LinearEvalConfig {
            epochs: proto.linear_epochs,
            batch_size: 64,
            lr: 0.1,
            momentum: 0.9,
            seed: proto.seed ^ 0x1E,
        },
    )
}

/// Formats an accuracy cell.
pub fn fmt_acc(v: f32) -> String {
    format!("{v:.2}")
}

/// Installs an observability sink according to `CQ_OBS` (see
/// `cq_obs::sink::init_from_env`) and the training-health monitor
/// according to `CQ_OBS_HEALTH` (see `cq_obs::health::init_from_env`),
/// announcing the choices on stderr. Call once at the top of every bench
/// binary's `main`.
pub fn obs_init() {
    if let Some(desc) = cq_obs::sink::init_from_env() {
        eprintln!("  [obs] {desc}");
    }
    match cq_obs::health::init_from_env() {
        cq_obs::health::HealthPolicy::Off => {}
        policy => eprintln!("  [obs] health monitor on ({policy:?} policy)"),
    }
}

/// Flushes counters and renders the summary report (per-phase time
/// breakdown, bit-width histogram, counters, metrics, health verdicts).
/// Returns `None` when observability was never enabled or nothing was
/// recorded, so binaries can print it only when there is something to
/// show.
pub fn obs_summary() -> Option<String> {
    if !cq_obs::enabled() {
        return None;
    }
    cq_obs::flush();
    let report = cq_obs::summary_report();
    if report.is_empty() {
        None
    } else {
        Some(report.render())
    }
}

/// Directory for cached pretrained encoders (`CQ_CACHE_DIR` env var, or
/// `target/cq-cache`). Several tables share the same pretrained encoders
/// (T1/T2/T3/F2); caching avoids recomputing them per binary.
pub fn cache_dir() -> std::path::PathBuf {
    let dir = std::env::var("CQ_CACHE_DIR").unwrap_or_else(|_| "target/cq-cache".into());
    let p = std::path::PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Pre-trains with SimCLR + pipeline, cached on disk under `tag`.
/// Returns the encoder and the explosion rate (0 when loaded from cache —
/// the rate is only meaningful on the run that trained).
///
/// # Errors
///
/// Propagates training/serialisation errors.
pub fn pretrain_simclr_cached(
    tag: &str,
    arch: Arch,
    pipeline: Pipeline,
    pset: Option<PrecisionSet>,
    proto: &Protocol,
    train: &Dataset,
) -> Result<(Encoder, f32), NnError> {
    let path = cache_dir().join(format!("{tag}.cqen"));
    if let Ok(f) = std::fs::File::open(&path) {
        if let Ok(enc) = Encoder::load(std::io::BufReader::new(f)) {
            eprintln!("  [cache] loaded {tag}");
            return Ok((enc, 0.0));
        }
    }
    eprintln!("  [train] {tag}");
    let (enc, expl) = pretrain_simclr(arch, pipeline, pset, proto, train)?;
    let f = std::fs::File::create(&path)?;
    enc.save(std::io::BufWriter::new(f))?;
    Ok((enc, expl))
}

/// BYOL variant of [`pretrain_simclr_cached`].
///
/// # Errors
///
/// Propagates training/serialisation errors.
pub fn pretrain_byol_cached(
    tag: &str,
    arch: Arch,
    pipeline: Pipeline,
    pset: Option<PrecisionSet>,
    proto: &Protocol,
    train: &Dataset,
) -> Result<(Encoder, f32), NnError> {
    let path = cache_dir().join(format!("{tag}.cqen"));
    if let Ok(f) = std::fs::File::open(&path) {
        if let Ok(enc) = Encoder::load(std::io::BufReader::new(f)) {
            eprintln!("  [cache] loaded {tag}");
            return Ok((enc, 0.0));
        }
    }
    eprintln!("  [train] {tag}");
    let (enc, expl) = pretrain_byol(arch, pipeline, pset, proto, train)?;
    let f = std::fs::File::create(&path)?;
    enc.save(std::io::BufWriter::new(f))?;
    Ok((enc, expl))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_accepts_exact_names_case_insensitively() {
        assert_eq!(Scale::try_parse("paper"), Ok(Scale::Paper));
        assert_eq!(Scale::try_parse("PAPER"), Ok(Scale::Paper));
        assert_eq!(Scale::try_parse("full"), Ok(Scale::Paper));
        assert_eq!(Scale::try_parse("quick"), Ok(Scale::Quick));
        assert_eq!(Scale::try_parse("Quick"), Ok(Scale::Quick));
    }

    #[test]
    fn scale_parsing_rejects_everything_else_with_pinned_message() {
        // The messages are part of the CLI contract: pin them.
        assert_eq!(
            Scale::try_parse("garbage"),
            Err("invalid scale `garbage`: expected `quick` or `paper`".to_string())
        );
        assert_eq!(
            Scale::try_parse(""),
            Err("invalid scale ``: expected `quick` or `paper`".to_string())
        );
        assert_eq!(
            Scale::try_parse("quick "),
            Err("invalid scale `quick `: expected `quick` or `paper`".to_string())
        );
    }

    #[test]
    fn scale_flag_takes_precedence_over_env() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // Flag wins over env.
        assert_eq!(
            Scale::resolve(args(&["--scale", "paper"]).into_iter(), Some("quick")),
            Ok(Scale::Paper)
        );
        assert_eq!(
            Scale::resolve(args(&["--scale=quick"]).into_iter(), Some("paper")),
            Ok(Scale::Quick)
        );
        // Env applies when no flag; default is Quick.
        assert_eq!(
            Scale::resolve(args(&[]).into_iter(), Some("paper")),
            Ok(Scale::Paper)
        );
        assert_eq!(
            Scale::resolve(args(&[]).into_iter(), None),
            Ok(Scale::Quick)
        );
        // Errors surface instead of silently defaulting, and name their
        // source.
        assert_eq!(
            Scale::resolve(args(&["--scale", "nope"]).into_iter(), None),
            Err("invalid scale `nope`: expected `quick` or `paper`".to_string())
        );
        assert_eq!(
            Scale::resolve(args(&["--scale"]).into_iter(), None),
            Err("--scale needs a value (quick|paper)".to_string())
        );
        assert_eq!(
            Scale::resolve(args(&[]).into_iter(), Some("nope")),
            Err("CQ_SCALE: invalid scale `nope`: expected `quick` or `paper`".to_string())
        );
        // The flag short-circuits before the env value is parsed, so a
        // bad CQ_SCALE cannot mask a valid --scale.
        assert_eq!(
            Scale::resolve(args(&["--scale", "quick"]).into_iter(), Some("nope")),
            Ok(Scale::Quick)
        );
    }

    #[test]
    fn protocols_share_sizes_across_methods() {
        let p = Protocol::new(Regime::CifarLike, Scale::Quick);
        let a = p.pretrain_cfg(Pipeline::Baseline, None);
        let b = p.pretrain_cfg(Pipeline::CqC, Some(PrecisionSet::range(6, 16).unwrap()));
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.batch_size, b.batch_size);
        assert_eq!(a.lr, b.lr);
        assert_eq!(a.seed, b.seed);
    }

    #[test]
    fn imagenetlike_protocol_is_larger() {
        let c = Protocol::new(Regime::CifarLike, Scale::Quick);
        let i = Protocol::new(Regime::ImagenetLike, Scale::Quick);
        assert!(i.data.train_size >= c.data.train_size);
        assert!(i.data.num_classes > c.data.num_classes);
    }
}
