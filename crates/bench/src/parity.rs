//! Int8-vs-fake-quant parity harness over the 48 built-in encoder
//! configurations.
//!
//! For each configuration (2 scales × 2 regimes × 6 architectures × 2
//! heads — the same enumeration `cq-check quantflow` certifies), the
//! harness builds the encoder, calibrates its batch-norm running
//! statistics to the batch (as a trained checkpoint's would be),
//! converts it with [`cq_infer::IntEncoder`], and runs both paths over
//! a synthetic clustered batch:
//!
//! - the **reference path**: the f32 forward in eval mode with 8-bit
//!   fake quantization (`ForwardCtx::eval().with_quant(uniform 8-bit)`),
//!   i.e. exactly what training simulated;
//! - the **integer path**: the converted i8 program.
//!
//! It then reports the max-abs / relative feature error and — the
//! deployment-relevant metric — the *top-1 kNN agreement*: the fraction
//! of samples whose leave-one-out 1-NN prediction over the feature
//! space is identical under both paths. The paper's claim is that
//! contrastively-quantized encoders survive deployment quantization;
//! agreement ≥ [`KNN_AGREEMENT_MIN`] on every config is the acceptance
//! bar, alongside relative error ≤ [`REL_ERR_MAX`].

use cq_infer::IntEncoder;
use cq_models::{Arch, Encoder, EncoderConfig};
use cq_nn::{ForwardCtx, NnError};
use cq_quant::{Precision, QuantConfig};
use cq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Protocol, Regime, Scale};

/// Minimum fraction of samples whose 1-NN prediction must agree between
/// the int8 and fake-quant f32 paths.
pub const KNN_AGREEMENT_MIN: f32 = 0.99;

/// Maximum relative max-abs feature error between the two paths.
pub const REL_ERR_MAX: f32 = 0.15;

/// Clusters in the synthetic parity batch.
pub const PARITY_CLUSTERS: usize = 8;

/// Samples per cluster in the full harness (128 samples total, so a
/// single disagreement still passes the 99% bar with margin for one).
pub const PARITY_PER_CLUSTER: usize = 16;

/// Spatial size of the synthetic parity images.
const PARITY_HW: usize = 16;

/// Parity outcome for one configuration.
#[derive(Debug, Clone)]
pub struct ParityReport {
    /// `scale/regime/arch/head` label.
    pub label: String,
    /// Max absolute feature difference between paths.
    pub max_abs_err: f32,
    /// `max_abs_err` relative to the reference path's max magnitude.
    pub rel_err: f32,
    /// Fraction of identical leave-one-out 1-NN predictions.
    pub knn_agreement: f32,
    /// Whether both thresholds hold.
    pub pass: bool,
}

/// The 48 built-in encoder configurations with their canonical labels
/// (the same enumeration the quantflow soundness gate walks).
pub fn parity_configs() -> Vec<(String, EncoderConfig)> {
    let mut out = Vec::new();
    for (scale, sname) in [(Scale::Quick, "quick"), (Scale::Paper, "paper")] {
        for (regime, rname) in [
            (Regime::CifarLike, "cifarlike"),
            (Regime::ImagenetLike, "imagenetlike"),
        ] {
            let proto = Protocol::new(regime, scale);
            for arch in Arch::all() {
                for (cfg, head) in [
                    (proto.encoder_cfg(arch), "simclr"),
                    (proto.byol_encoder_cfg(arch), "byol"),
                ] {
                    out.push((format!("{sname}/{rname}/{arch:?}/{head}"), cfg));
                }
            }
        }
    }
    out
}

/// Generates a labeled clustered batch: `clusters` random image centers
/// (σ = 1), each with `per_cluster` noisy samples (σ = 0.1), well
/// separated so 1-NN structure is unambiguous.
///
/// Pixels are projected onto the 8-bit grid before batching — real
/// deployment images are 8-bit to begin with, and an on-grid input
/// keeps the stem convolution's activation grid identical in both
/// paths (off-grid f32 inputs would inject a quantization perturbation
/// the fake-quant reference never sees, which deep untrained stacks
/// amplify chaotically).
pub fn clustered_batch(clusters: usize, per_cluster: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pix = 3 * PARITY_HW * PARITY_HW;
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..pix).map(|_| rng.gen_range(-1.0..1.0f32)).collect())
        .collect();
    let n = clusters * per_cluster;
    let mut data = Vec::with_capacity(n * pix);
    let mut labels = Vec::with_capacity(n);
    for (c, center) in centers.iter().enumerate() {
        for _ in 0..per_cluster {
            data.extend(center.iter().map(|&v| v + rng.gen_range(-0.1..0.1f32)));
            labels.push(c);
        }
    }
    cq_quant::fake_quant_into(&mut data, Precision::Bits(8), cq_quant::QuantMode::Round);
    let x = Tensor::from_vec(data, &[n, 3, PARITY_HW, PARITY_HW])
        .expect("clustered batch shape is consistent by construction"); // cq-allow(no-unwrap): shape computed from the same n/pix used to fill data
    (x, labels)
}

/// Leave-one-out 1-NN predicted label per sample under Euclidean
/// distance, deterministic tie-break by lowest index.
pub fn nn1_predictions(features: &Tensor, labels: &[usize]) -> Vec<usize> {
    let (n, d) = (features.dims()[0], features.dims()[1]);
    let fs = features.as_slice();
    (0..n)
        .map(|i| {
            let fi = &fs[i * d..(i + 1) * d];
            let mut best = (f32::INFINITY, labels[i]);
            for j in 0..n {
                if j == i {
                    continue;
                }
                let fj = &fs[j * d..(j + 1) * d];
                let dist: f32 = fi.iter().zip(fj).map(|(&a, &b)| (a - b) * (a - b)).sum();
                if dist < best.0 {
                    best = (dist, labels[j]);
                }
            }
            best.1
        })
        .collect()
}

/// Residual-branch output gammas are scaled by this factor before
/// calibration, giving each block a near-identity effective gain — the
/// regime trained residual networks actually operate in.
const RESIDUAL_GAMMA_DAMP: f32 = 0.2;

/// Makes a freshly initialized encoder behave like a trained checkpoint
/// for parity purposes: damps residual-branch gains, then calibrates
/// batch-norm running statistics to the batch.
///
/// Two properties of a *trained* network matter here and both are absent
/// at init:
///
/// 1. **Near-identity residual blocks.** An untrained residual stack is
///    exponentially chaotic: each block amplifies tiny numeric
///    perturbations, so two numerically distinct but equally correct
///    implementations (f32 sequential accumulation vs exact integer
///    MACs) diverge without bound by ~40 blocks. Trained residual
///    networks sit near the identity regime (that is why they are
///    trainable at all), so the harness scales each block's final
///    batch-norm gamma (`*.bn2.gamma`, `*.project.bn.gamma`) by
///    [`RESIDUAL_GAMMA_DAMP`] — the skip path dominates and
///    perturbations grow with the signal instead of faster than it.
/// 2. **Matched running statistics.** One train-mode forward folds the
///    batch statistics into each running stat as `r = 0.9·init +
///    0.1·batch` from the fresh zeros/ones init, so the batch
///    statistics are recovered exactly and written back. Without
///    matched stats, deep stacks amplify activations to ~1e9 and no
///    8-bit grid — fake or integer — can represent them.
///
/// Damping happens *before* the calibration pass so every downstream
/// batch-norm's recovered statistics match the activations it will see.
fn calibrate_like_trained(enc: &mut Encoder, x: &Tensor) -> Result<(), NnError> {
    let damp: Vec<_> = enc
        .params()
        .iter()
        .filter(|(_, name, _)| name.ends_with(".bn2.gamma") || name.ends_with(".project.bn.gamma"))
        .map(|(id, _, _)| id)
        .collect();
    for id in damp {
        for v in enc.params_mut().get_mut(id).as_mut_slice() {
            *v *= RESIDUAL_GAMMA_DAMP;
        }
    }
    enc.features(x, &ForwardCtx::train())?;
    for (i, t) in enc.state_tensors_mut().into_iter().enumerate() {
        let mean_like = i % 2 == 0;
        for v in t.as_mut_slice() {
            *v = if mean_like {
                *v / 0.1
            } else {
                ((*v - 0.9) / 0.1).max(1e-3)
            };
        }
    }
    Ok(())
}

/// Compares int8 features against reference features over a labeled
/// batch: `(max_abs_err, rel_err, knn_agreement)`.
pub fn feature_parity(
    int_features: &Tensor,
    ref_features: &Tensor,
    labels: &[usize],
) -> (f32, f32, f32) {
    let max_abs = int_features
        .as_slice()
        .iter()
        .zip(ref_features.as_slice())
        .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()));
    let denom = ref_features
        .as_slice()
        .iter()
        .fold(0.0f32, |m, &v| m.max(v.abs()))
        .max(1e-6);
    let pred_int = nn1_predictions(int_features, labels);
    let pred_ref = nn1_predictions(ref_features, labels);
    let agree = pred_int
        .iter()
        .zip(&pred_ref)
        .filter(|(a, b)| a == b)
        .count() as f32
        / labels.len() as f32;
    (max_abs, max_abs / denom, agree)
}

/// Runs int-vs-fake-quant parity for one configuration.
///
/// # Errors
///
/// Propagates encoder construction / conversion / forward errors.
pub fn check_parity(
    label: &str,
    cfg: &EncoderConfig,
    per_cluster: usize,
    seed: u64,
) -> Result<ParityReport, NnError> {
    let mut enc = Encoder::new(cfg, seed)?;
    let (x, labels) = clustered_batch(PARITY_CLUSTERS, per_cluster, seed ^ 0xDA7A);
    calibrate_like_trained(&mut enc, &x)?;

    let fake8 = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(8)));
    let ref_features = enc.features(&x, &fake8)?;

    let fail = |e: cq_infer::InferError| NnError::BadInput {
        layer: format!("int8 parity {label}"),
        expected: e.to_string(),
        got: Vec::new(),
    };
    let int = IntEncoder::from_encoder(&enc).map_err(fail)?;
    let int_features = int.features(&x).map_err(fail)?;

    let (max_abs_err, rel_err, knn_agreement) =
        feature_parity(&int_features, &ref_features, &labels);
    Ok(ParityReport {
        label: label.to_string(),
        max_abs_err,
        rel_err,
        knn_agreement,
        pass: knn_agreement >= KNN_AGREEMENT_MIN && rel_err <= REL_ERR_MAX,
    })
}

/// Runs the parity harness over all 48 built-in configurations.
///
/// # Errors
///
/// Propagates the first configuration failure.
pub fn parity_builtin(per_cluster: usize) -> Result<Vec<ParityReport>, NnError> {
    parity_configs()
        .iter()
        .map(|(label, cfg)| check_parity(label, cfg, per_cluster, 0xC0DE))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_enumeration_matches_quantflows_48() {
        let cfgs = parity_configs();
        assert_eq!(cfgs.len(), 48);
        let mut labels: Vec<_> = cfgs.iter().map(|(l, _)| l.clone()).collect();
        labels.dedup();
        assert_eq!(labels.len(), 48, "labels must be unique");
    }

    #[test]
    fn clustered_batch_is_labeled_and_deterministic() {
        let (xa, la) = clustered_batch(4, 3, 9);
        let (xb, lb) = clustered_batch(4, 3, 9);
        assert_eq!(xa.as_slice(), xb.as_slice());
        assert_eq!(la, lb);
        assert_eq!(xa.dims(), &[12, 3, PARITY_HW, PARITY_HW]);
        assert_eq!(la[0], 0);
        assert_eq!(la[11], 3);
    }

    #[test]
    fn parity_passes_on_representative_configs_in_debug() {
        // Debug-mode subset of the full 48-config release harness: one
        // ResNet (dense convs + residual skips) and one MobileNetV2
        // (depthwise + relu6 + BYOL batch-normed head).
        let proto = Protocol::new(Regime::CifarLike, Scale::Quick);
        for (label, cfg) in [
            ("debug/ResNet18/simclr", proto.encoder_cfg(Arch::ResNet18)),
            (
                "debug/MobileNetV2/byol",
                proto.byol_encoder_cfg(Arch::MobileNetV2),
            ),
        ] {
            let r = check_parity(label, &cfg, 4, 7).expect(label);
            assert!(
                r.pass,
                "{label}: rel_err {} agreement {}",
                r.rel_err, r.knn_agreement
            );
        }
    }
}
