//! NT-Xent loss scaling in batch size (the 2N×2N similarity matrix is the
//! quadratic term of SimCLR's step cost).

use cq_core::{byol_regression, nt_xent};
use cq_tensor::Tensor;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn bench_losses(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut g = c.benchmark_group("nt_xent");
    for n in [32usize, 64, 128, 256] {
        let a = Tensor::randn(&[n, 32], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[n, 32], 0.0, 1.0, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| nt_xent(black_box(&a), black_box(&b), 0.5).unwrap())
        });
    }
    g.finish();

    let p = Tensor::randn(&[128, 32], 0.0, 1.0, &mut rng);
    let t = Tensor::randn(&[128, 32], 0.0, 1.0, &mut rng);
    c.bench_function("byol_regression_128", |b| {
        b.iter(|| byol_regression(black_box(&p), black_box(&t)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_losses
}
criterion_main!(benches);
