//! Augmentation pipeline throughput: per-op and full two-view cost.

use cq_data::{AugmentConfig, AugmentPipeline, Dataset, DatasetConfig, TwoViewLoader};
use cq_tensor::Tensor;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_augment(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let img = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
    let pipe = AugmentPipeline::new(AugmentConfig::simclr());
    c.bench_function("augment_single_16", |b| {
        let mut r = StdRng::seed_from_u64(1);
        b.iter(|| pipe.apply(black_box(&img), &mut r))
    });
    c.bench_function("two_views_16", |b| {
        let mut r = StdRng::seed_from_u64(2);
        b.iter(|| pipe.two_views(black_box(&img), &mut r))
    });

    let (train, _) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(128, 16));
    c.bench_function("two_view_batch_128", |b| {
        let mut loader = TwoViewLoader::new(pipe, 128, 3);
        let idxs: Vec<usize> = (0..128).collect();
        b.iter(|| loader.make_batch(black_box(&train), &idxs))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_augment
}
criterion_main!(benches);
