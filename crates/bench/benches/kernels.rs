//! Core kernel throughput: matmul variants, dense conv forward/backward
//! and depthwise conv — the compute substrate under every experiment.

use cq_nn::{Conv2d, DepthwiseConv2d, ForwardCtx, Layer, ParamSet};
use cq_tensor::{Conv2dSpec, Tensor};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let a = Tensor::randn(&[128, 128], 0.0, 1.0, &mut rng);
    let b = Tensor::randn(&[128, 128], 0.0, 1.0, &mut rng);
    let mut g = c.benchmark_group("matmul_128");
    g.bench_function("nn", |bch| {
        bch.iter(|| black_box(&a).matmul(black_box(&b)).unwrap())
    });
    g.bench_function("nt", |bch| {
        bch.iter(|| black_box(&a).matmul_nt(black_box(&b)).unwrap())
    });
    g.bench_function("tn", |bch| {
        bch.iter(|| black_box(&a).matmul_tn(black_box(&b)).unwrap())
    });
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut ps = ParamSet::new();
    let mut conv = Conv2d::new(
        &mut ps,
        "c",
        16,
        16,
        Conv2dSpec::new(3, 1, 1),
        false,
        &mut rng,
    );
    let x = Tensor::randn(&[16, 16, 16, 16], 0.0, 1.0, &mut rng);
    let ctx = ForwardCtx::train();
    let mut g = c.benchmark_group("conv3x3_16c_16x16_b16");
    g.bench_function("forward", |b| {
        b.iter(|| conv.forward(&ps, black_box(&x), &ctx).unwrap())
    });
    let (y, cache) = conv.forward(&ps, &x, &ctx).unwrap();
    let dy = Tensor::ones(y.dims());
    g.bench_function("backward", |b| {
        b.iter(|| {
            let mut gs = ps.zero_grads();
            conv.backward(&ps, black_box(&cache), black_box(&dy), &mut gs)
                .unwrap()
        })
    });
    g.finish();

    let mut ps2 = ParamSet::new();
    let mut dw = DepthwiseConv2d::new(&mut ps2, "dw", 16, Conv2dSpec::new(3, 1, 1), &mut rng);
    c.bench_function("depthwise3x3_16c_16x16_b16", |b| {
        b.iter(|| dw.forward(&ps2, black_box(&x), &ctx).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_conv
}
criterion_main!(benches);
