//! Per-step cost of each Contrastive Quant pipeline variant — quantifying
//! the compute overhead of the method itself (CQ-A ≈ baseline; CQ-B/CQ-C
//! roughly double the forwards per step).

use cq_core::{Pipeline, PretrainConfig, SimclrTrainer};
use cq_data::{AugmentConfig, AugmentPipeline, Dataset, DatasetConfig, TwoViewLoader};
use cq_models::{Arch, Encoder, EncoderConfig};
use cq_quant::PrecisionSet;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_steps(c: &mut Criterion) {
    let (train, _) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(64, 16));
    let mut loader = TwoViewLoader::new(AugmentPipeline::new(AugmentConfig::simclr()), 32, 0);
    let idxs: Vec<usize> = (0..32).collect();
    let batch = loader.make_batch(&train, &idxs);

    let mut g = c.benchmark_group("simclr_step_r18w4_b32");
    g.sample_size(10);
    for pipeline in [
        Pipeline::Baseline,
        Pipeline::CqA,
        Pipeline::CqB,
        Pipeline::CqC,
        Pipeline::CqQuant,
    ] {
        let enc =
            Encoder::new(&EncoderConfig::new(Arch::ResNet18, 4).with_proj(32, 16), 0).unwrap();
        let cfg = PretrainConfig {
            pipeline,
            precision_set: pipeline
                .needs_precisions()
                .then(|| PrecisionSet::range(6, 16).unwrap()),
            batch_size: 32,
            ..Default::default()
        };
        let mut trainer = SimclrTrainer::new(enc, cfg).unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(pipeline.name()),
            &pipeline,
            |b, _| b.iter(|| trainer.step(black_box(&batch), 0.01).unwrap()),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_steps
}
criterion_main!(benches);
