//! Throughput of the Eq. 10 linear quantizer across bit-widths and
//! rounding modes — the per-forward overhead Contrastive Quant adds.

use cq_quant::{fake_quant, Precision, QuantMode};
use cq_tensor::Tensor;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn bench_quantizer(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let t = Tensor::randn(&[64 * 1024], 0.0, 1.0, &mut rng);
    let mut g = c.benchmark_group("fake_quant_64k");
    for bits in [4u8, 8, 12, 16] {
        g.bench_with_input(BenchmarkId::new("round", bits), &bits, |b, &bits| {
            b.iter(|| fake_quant(black_box(&t), Precision::Bits(bits), QuantMode::Round))
        });
    }
    g.bench_function("floor_8", |b| {
        b.iter(|| fake_quant(black_box(&t), Precision::Bits(8), QuantMode::Floor))
    });
    g.bench_function("fp_noop", |b| {
        b.iter(|| fake_quant(black_box(&t), Precision::Fp, QuantMode::Round))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_quantizer
}
criterion_main!(benches);
