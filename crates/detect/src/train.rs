//! Detection transfer training: fine-tune a pretrained encoder + fresh
//! YOLO head on the synthetic detection set (the paper's Tab. 3 protocol).

use cq_models::Encoder;
use cq_nn::{CosineSchedule, ForwardCtx, Layer, NnError, Sgd, SgdConfig};
use cq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{
    decode_predictions, evaluate_detections, nms, yolo_loss, DetDataset, DetMetrics, DetectionHead,
};

/// Detector fine-tuning hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (cosine-decayed).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Confidence threshold for decoding at evaluation.
    pub conf_thresh: f32,
    /// IoU threshold for NMS at evaluation.
    pub nms_thresh: f32,
    /// Seed for head init and batch order.
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            epochs: 15,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            conf_thresh: 0.3,
            nms_thresh: 0.45,
            seed: 21,
        }
    }
}

/// Transfers a pretrained encoder to the detection task: duplicates the
/// encoder, attaches a fresh [`DetectionHead`], fine-tunes end-to-end and
/// returns test-set AP metrics.
///
/// The input encoder is left untouched.
///
/// # Errors
///
/// Propagates layer/optimizer errors.
pub fn train_detector(
    encoder: &Encoder,
    train: &DetDataset,
    test: &DetDataset,
    cfg: &DetectorConfig,
) -> Result<DetMetrics, NnError> {
    // cq-allow(det-rng-ctor): detection transfer is a short un-checkpointed eval; its stream replays from cfg.seed
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = encoder.duplicate()?;
    let channels = model.feat_dim(); // spatial channels == feature dim
    crate::head_plan(channels, train.num_classes())
        .and_then(|p| p.infer(&[2, channels, 4, 4]).map(|_| ()))
        .map_err(|e| NnError::Param(format!("invalid detection head config: {e}")))?;
    let mut head = DetectionHead::new(model.params_mut(), channels, train.num_classes(), &mut rng);
    let mut opt = Sgd::new(
        model.params(),
        SgdConfig {
            lr: cfg.lr,
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
            nesterov: false,
        },
    );
    let bs = cfg.batch_size.min(train.len()).max(1);
    let steps_per_epoch = (train.len() / bs).max(1);
    let sched = CosineSchedule::new(cfg.lr, cfg.epochs * steps_per_epoch, 0);
    let train_ctx = ForwardCtx::train();
    let mut step = 0usize;
    for _ in 0..cfg.epochs {
        let order = Tensor::permutation(train.len(), &mut rng);
        for chunk in order.chunks(bs) {
            if chunk.len() < 2 {
                continue; // BatchNorm in the head needs batch statistics
            }
            let (x, gts) = train.batch(chunk);
            let (spatial, sp_cache) = model.forward_spatial(&x, &train_ctx)?;
            let (raw, head_cache) = head.forward(model.params(), &spatial, &train_ctx)?;
            let (_, draw) = yolo_loss(&raw, &gts, train.num_classes())?;
            let mut gs = model.params().zero_grads();
            let dspatial = head.backward(model.params(), &head_cache, &draw, &mut gs)?;
            model.backward_spatial(&sp_cache, &dspatial, &mut gs)?;
            if gs.is_finite() {
                opt.step(model.params_mut(), &gs, sched.lr_at(step))?;
            }
            step += 1;
        }
    }

    // Evaluation on the test split.
    let eval_ctx = ForwardCtx::eval();
    let mut all_preds = Vec::with_capacity(test.len());
    let mut all_gts = Vec::with_capacity(test.len());
    let mut i = 0;
    while i < test.len() {
        let end = (i + bs).min(test.len());
        let idxs: Vec<usize> = (i..end).collect();
        let (x, gts) = test.batch(&idxs);
        let (spatial, _) = model.forward_spatial(&x, &eval_ctx)?;
        let (raw, _) = head.forward(model.params(), &spatial, &eval_ctx)?;
        let decoded = decode_predictions(&raw, test.num_classes(), cfg.conf_thresh);
        for preds in decoded {
            let boxes: Vec<_> = preds.iter().map(|p| p.bbox).collect();
            let scores: Vec<_> = preds.iter().map(|p| p.score).collect();
            let classes: Vec<_> = preds.iter().map(|p| p.class).collect();
            let keep = nms(&boxes, &scores, &classes, cfg.nms_thresh);
            all_preds.push(keep.into_iter().map(|k| preds[k]).collect::<Vec<_>>());
        }
        all_gts.extend(gts);
        i = end;
    }
    Ok(evaluate_detections(
        &all_preds,
        &all_gts,
        test.num_classes(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetectionConfig;
    use cq_models::{Arch, EncoderConfig};

    #[test]
    fn detector_learns_something_small_scale() {
        let enc = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 4), 0).unwrap();
        let (train, test) = DetDataset::generate(&DetectionConfig::default().with_sizes(64, 24));
        let cfg = DetectorConfig {
            epochs: 8,
            batch_size: 16,
            ..Default::default()
        };
        let m = train_detector(&enc, &train, &test, &cfg).unwrap();
        assert!(m.ap50.is_finite());
        assert!(m.ap50 >= 0.0 && m.ap50 <= 100.0);
        assert!(
            m.ap <= m.ap50 + 1e-3,
            "AP averages stricter thresholds: {m}"
        );
    }

    #[test]
    fn detector_does_not_mutate_input_encoder() {
        let enc = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2), 1).unwrap();
        let before: f32 = enc.params().iter().map(|(_, _, t)| t.sum()).sum();
        let (train, test) = DetDataset::generate(&DetectionConfig::default().with_sizes(16, 8));
        let cfg = DetectorConfig {
            epochs: 1,
            batch_size: 8,
            ..Default::default()
        };
        train_detector(&enc, &train, &test, &cfg).unwrap();
        let after: f32 = enc.params().iter().map(|(_, _, t)| t.sum()).sum();
        assert_eq!(before, after);
    }
}
