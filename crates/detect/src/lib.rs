//! # cq-detect
//!
//! Detection-transfer substrate for the paper's Table 3 (transfer of
//! ImageNet-pretrained encoders to Pascal VOC detection on a YOLO head).
//!
//! Pascal VOC and YOLOv4 are not available here; per the substitution
//! protocol (DESIGN.md §1) this crate provides:
//!
//! - a synthetic detection dataset (1–3 objects per image, box + class
//!   ground truth);
//! - a single-scale YOLO-style grid head on the pretrained backbone's
//!   spatial features;
//! - the full evaluation stack: IoU, NMS, per-class average precision,
//!   and the AP / AP50 / AP75 metrics of Table 3.
//!
//! The transfer protocol matches the paper's: the pretrained backbone is
//! fine-tuned together with the new head on the detection training set,
//! then evaluated on the held-out test set.

#![deny(missing_docs)]

mod boxes;
mod dataset;
mod head;
mod loss;
mod metrics;
mod train;

pub use boxes::{iou, nms, BBox};
pub use dataset::{DetDataset, DetectionConfig, GtBox};
pub use head::{decode_predictions, head_plan, DetectionHead, Prediction};
pub use loss::yolo_loss;
pub use metrics::{evaluate_detections, DetMetrics};
pub use train::{train_detector, DetectorConfig};
