//! Detection evaluation: per-class average precision and the COCO-style
//! AP / AP50 / AP75 summary of the paper's Table 3.

use crate::{iou, GtBox, Prediction};

/// Detection quality metrics (×100, as the paper reports them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetMetrics {
    /// Mean AP over IoU thresholds 0.50:0.05:0.95.
    pub ap: f32,
    /// AP at IoU 0.50.
    pub ap50: f32,
    /// AP at IoU 0.75.
    pub ap75: f32,
}

impl std::fmt::Display for DetMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AP {:.2} / AP50 {:.2} / AP75 {:.2}",
            self.ap, self.ap50, self.ap75
        )
    }
}

/// Average precision for one class at one IoU threshold, over all images.
fn class_ap(
    preds: &[Vec<Prediction>],
    gts: &[Vec<GtBox>],
    class: usize,
    iou_thresh: f32,
) -> Option<f32> {
    let total_gt: usize = gts
        .iter()
        .map(|g| g.iter().filter(|b| b.class == class).count())
        .sum();
    if total_gt == 0 {
        return None;
    }
    // Flatten class predictions with image ids, sort by score.
    let mut dets: Vec<(usize, &Prediction)> = Vec::new();
    for (img, ps) in preds.iter().enumerate() {
        for p in ps.iter().filter(|p| p.class == class) {
            dets.push((img, p));
        }
    }
    dets.sort_by(|a, b| {
        b.1.score
            .partial_cmp(&a.1.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut matched: Vec<Vec<bool>> = gts.iter().map(|g| vec![false; g.len()]).collect();
    let mut tp = Vec::with_capacity(dets.len());
    for (img, p) in &dets {
        // best unmatched same-class gt in this image
        let mut best = None;
        let mut best_iou = iou_thresh;
        for (gi, gt) in gts[*img].iter().enumerate() {
            if gt.class != class || matched[*img][gi] {
                continue;
            }
            let i = iou(&p.bbox, &gt.bbox);
            if i >= best_iou {
                best_iou = i;
                best = Some(gi);
            }
        }
        match best {
            Some(gi) => {
                matched[*img][gi] = true;
                tp.push(true);
            }
            None => tp.push(false),
        }
    }
    // precision-recall with monotone precision envelope
    let mut cum_tp = 0usize;
    let mut curve: Vec<(f32, f32)> = Vec::with_capacity(tp.len());
    for (i, &is_tp) in tp.iter().enumerate() {
        if is_tp {
            cum_tp += 1;
        }
        let prec = cum_tp as f32 / (i + 1) as f32;
        let rec = cum_tp as f32 / total_gt as f32;
        curve.push((rec, prec));
    }
    // envelope from the right
    for i in (0..curve.len().saturating_sub(1)).rev() {
        curve[i].1 = curve[i].1.max(curve[i + 1].1);
    }
    // integrate over recall
    let mut ap = 0.0f32;
    let mut prev_rec = 0.0f32;
    for &(rec, prec) in &curve {
        if rec > prev_rec {
            ap += (rec - prev_rec) * prec;
            prev_rec = rec;
        }
    }
    Some(ap)
}

/// Mean AP over classes at one IoU threshold (fraction in `[0, 1]`).
fn map_at(preds: &[Vec<Prediction>], gts: &[Vec<GtBox>], num_classes: usize, t: f32) -> f32 {
    let mut sum = 0.0f32;
    let mut count = 0usize;
    for c in 0..num_classes {
        if let Some(ap) = class_ap(preds, gts, c, t) {
            sum += ap;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f32
    }
}

/// Evaluates decoded (and NMS-filtered) predictions against ground truth,
/// producing the paper's AP / AP50 / AP75 (×100).
///
/// # Panics
///
/// Panics if `preds` and `gts` have different lengths.
pub fn evaluate_detections(
    preds: &[Vec<Prediction>],
    gts: &[Vec<GtBox>],
    num_classes: usize,
) -> DetMetrics {
    assert_eq!(preds.len(), gts.len(), "one prediction list per image");
    let thresholds: Vec<f32> = (0..10).map(|i| 0.5 + 0.05 * i as f32).collect();
    let mut sum = 0.0f32;
    for &t in &thresholds {
        sum += map_at(preds, gts, num_classes, t);
    }
    DetMetrics {
        ap: 100.0 * sum / thresholds.len() as f32,
        ap50: 100.0 * map_at(preds, gts, num_classes, 0.5),
        ap75: 100.0 * map_at(preds, gts, num_classes, 0.75),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BBox;

    fn gt(cx: f32, cy: f32, class: usize) -> GtBox {
        GtBox {
            bbox: BBox::new(cx, cy, 0.2, 0.2),
            class,
        }
    }

    fn pred(cx: f32, cy: f32, class: usize, score: f32) -> Prediction {
        Prediction {
            bbox: BBox::new(cx, cy, 0.2, 0.2),
            score,
            class,
        }
    }

    #[test]
    fn perfect_predictions_give_ap_100() {
        let gts = vec![vec![gt(0.3, 0.3, 0), gt(0.7, 0.7, 1)]];
        let preds = vec![vec![pred(0.3, 0.3, 0, 0.9), pred(0.7, 0.7, 1, 0.8)]];
        let m = evaluate_detections(&preds, &gts, 2);
        assert!((m.ap - 100.0).abs() < 1e-3, "{m}");
        assert!((m.ap50 - 100.0).abs() < 1e-3);
        assert!((m.ap75 - 100.0).abs() < 1e-3);
    }

    #[test]
    fn no_predictions_give_ap_0() {
        let gts = vec![vec![gt(0.3, 0.3, 0)]];
        let preds = vec![vec![]];
        let m = evaluate_detections(&preds, &gts, 1);
        assert_eq!(m.ap, 0.0);
    }

    #[test]
    fn slightly_offset_box_passes_ap50_but_not_ap75() {
        // IoU of 0.2-boxes offset by 0.04 in x: inter = 0.16*0.2,
        // union = 2*0.04 - 0.032 = 0.048 => IoU = 2/3.
        let gts = vec![vec![gt(0.5, 0.5, 0)]];
        let preds = vec![vec![pred(0.54, 0.5, 0, 0.9)]];
        let m = evaluate_detections(&preds, &gts, 1);
        assert!((m.ap50 - 100.0).abs() < 1e-3, "{m}");
        assert_eq!(m.ap75, 0.0, "{m}");
        assert!(m.ap > 0.0 && m.ap < 100.0);
    }

    #[test]
    fn false_positives_lower_precision() {
        let gts = vec![vec![gt(0.3, 0.3, 0)]];
        // fp has HIGHER score than the tp -> precision at the tp is 0.5
        let preds = vec![vec![pred(0.8, 0.8, 0, 0.95), pred(0.3, 0.3, 0, 0.9)]];
        let m = evaluate_detections(&preds, &gts, 1);
        assert!((m.ap50 - 50.0).abs() < 1.0, "{m}");
    }

    #[test]
    fn duplicate_detections_count_once() {
        let gts = vec![vec![gt(0.3, 0.3, 0)]];
        let preds = vec![vec![pred(0.3, 0.3, 0, 0.9), pred(0.3, 0.3, 0, 0.85)]];
        let m = evaluate_detections(&preds, &gts, 1);
        // first matches (recall 1 at precision 1), duplicate is a FP after
        assert!((m.ap50 - 100.0).abs() < 1e-3, "{m}");
    }

    #[test]
    fn wrong_class_never_matches() {
        let gts = vec![vec![gt(0.3, 0.3, 0)]];
        let preds = vec![vec![pred(0.3, 0.3, 1, 0.9)]];
        let m = evaluate_detections(&preds, &gts, 2);
        assert_eq!(m.ap50, 0.0);
    }
}
