//! Single-scale YOLO-style detection head and prediction decoding.

use cq_nn::{BatchNorm2d, Cache, Conv2d, ForwardCtx, GradSet, Layer, NnError, ParamSet, Relu};
use cq_tensor::{Conv2dSpec, Tensor};
use rand::rngs::StdRng;

use crate::BBox;

/// A decoded detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted box (normalised coordinates).
    pub bbox: BBox,
    /// Confidence score (objectness × class probability).
    pub score: f32,
    /// Predicted class.
    pub class: usize,
}

/// YOLO-style grid head: `conv3×3 → BN → ReLU → conv1×1` mapping the
/// backbone's spatial features `[N, C, g, g]` to raw predictions
/// `[N, 5 + K, g, g]` (objectness, tx, ty, tw, th, class logits).
pub struct DetectionHead {
    conv1: Conv2d,
    bn: BatchNorm2d,
    relu: Relu,
    conv2: Conv2d,
    num_classes: usize,
}

impl std::fmt::Debug for DetectionHead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DetectionHead(classes={})", self.num_classes)
    }
}

/// Forward trace of [`DetectionHead`].
struct HeadCache {
    c1: Cache,
    b: Cache,
    r: Cache,
    c2: Cache,
}

impl DetectionHead {
    /// Creates a head over `in_channels` backbone channels for
    /// `num_classes` object classes.
    pub fn new(
        ps: &mut ParamSet,
        in_channels: usize,
        num_classes: usize,
        rng: &mut StdRng,
    ) -> Self {
        let conv1 = Conv2d::new(
            ps,
            "det.conv1",
            in_channels,
            in_channels,
            Conv2dSpec::new(3, 1, 1),
            false,
            rng,
        );
        let bn = BatchNorm2d::new(ps, "det.bn", in_channels);
        let conv2 = Conv2d::new(
            ps,
            "det.conv2",
            in_channels,
            5 + num_classes,
            Conv2dSpec::new(1, 1, 0),
            true,
            rng,
        );
        DetectionHead {
            conv1,
            bn,
            relu: Relu::new(),
            conv2,
            num_classes,
        }
    }

    /// Number of object classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

/// Symbolic plan of a [`DetectionHead`] over `in_channels` backbone
/// channels — interpreted by [`crate::train_detector`] (and the `cq-check`
/// binary) to validate the head's wiring before any weight is allocated.
///
/// # Errors
///
/// Returns a layer-attributed [`cq_nn::spec::SpecError`] for zero channel
/// or class counts.
pub fn head_plan(
    in_channels: usize,
    num_classes: usize,
) -> Result<cq_nn::spec::Plan, cq_nn::spec::SpecError> {
    use cq_nn::spec::{LayerKind, Plan, SpecError};
    if in_channels == 0 {
        return Err(SpecError::config(
            "det.conv1",
            "in_channels must be positive",
        ));
    }
    if num_classes == 0 {
        return Err(SpecError::config(
            "det.conv2",
            "num_classes must be positive",
        ));
    }
    let mut p = Plan::new();
    p.push(
        "det.conv1",
        LayerKind::Conv2d {
            in_ch: in_channels,
            out_ch: in_channels,
            spec: Conv2dSpec::new(3, 1, 1),
            bias: false,
        },
    );
    p.push(
        "det.bn",
        LayerKind::BatchNorm2d {
            channels: in_channels,
        },
    );
    p.push("det.relu", LayerKind::Relu);
    p.push(
        "det.conv2",
        LayerKind::Conv2d {
            in_ch: in_channels,
            out_ch: 5 + num_classes,
            spec: Conv2dSpec::new(1, 1, 0),
            bias: true,
        },
    );
    Ok(p)
}

impl Layer for DetectionHead {
    fn layer_kind(&self) -> &'static str {
        "DetectionHead"
    }

    fn forward(
        &mut self,
        ps: &ParamSet,
        x: &Tensor,
        ctx: &ForwardCtx,
    ) -> Result<(Tensor, Cache), NnError> {
        let (y1, c1) = self.conv1.forward(ps, x, ctx)?;
        let (y2, b) = self.bn.forward(ps, &y1, ctx)?;
        let (y3, r) = self.relu.forward(ps, &y2, ctx)?;
        let (y4, c2) = self.conv2.forward(ps, &y3, ctx)?;
        Ok((y4, Cache::new(HeadCache { c1, b, r, c2 })))
    }

    fn backward(
        &self,
        ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        gs: &mut GradSet,
    ) -> Result<Tensor, NnError> {
        let c = cache.downcast::<HeadCache>("DetectionHead")?;
        let d3 = self.conv2.backward(ps, &c.c2, dy, gs)?;
        let d2 = self.relu.backward(ps, &c.r, &d3, gs)?;
        let d1 = self.bn.backward(ps, &c.b, &d2, gs)?;
        self.conv1.backward(ps, &c.c1, &d1, gs)
    }

    fn state_tensors(&self) -> Vec<&Tensor> {
        self.bn.state_tensors()
    }

    fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        self.bn.state_tensors_mut()
    }
}

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// Decodes raw head output `[N, 5+K, g, g]` into per-image predictions
/// with `score >= conf_thresh`.
///
/// Cell `(gy, gx)` decodes to `cx = (gx + σ(tx)) / g`,
/// `cy = (gy + σ(ty)) / g`, `w = σ(tw)`, `h = σ(th)`; the score is
/// `σ(obj) · max_class_prob`.
///
/// # Panics
///
/// Panics if the channel count does not match `5 + num_classes`.
pub fn decode_predictions(
    raw: &Tensor,
    num_classes: usize,
    conf_thresh: f32,
) -> Vec<Vec<Prediction>> {
    assert_eq!(raw.rank(), 4, "decode expects [N, 5+K, g, g]");
    let (n, a, gh, gw) = (raw.dims()[0], raw.dims()[1], raw.dims()[2], raw.dims()[3]);
    assert_eq!(a, 5 + num_classes, "channel count mismatch");
    let rs = raw.as_slice();
    let cell = |ni: usize, ch: usize, gy: usize, gx: usize| rs[((ni * a + ch) * gh + gy) * gw + gx];
    let mut out = Vec::with_capacity(n);
    for ni in 0..n {
        let mut preds = Vec::new();
        for gy in 0..gh {
            for gx in 0..gw {
                let obj = sigmoid(cell(ni, 0, gy, gx));
                // softmax over class logits
                let logits: Vec<f32> = (0..num_classes).map(|k| cell(ni, 5 + k, gy, gx)).collect();
                let mx = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let exps: Vec<f32> = logits.iter().map(|&v| (v - mx).exp()).collect();
                let sum: f32 = exps.iter().sum();
                let (best, best_p) = exps
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.partial_cmp(y.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, &e)| (i, e / sum))
                    .unwrap_or((0, 0.0));
                let score = obj * best_p;
                if score < conf_thresh {
                    continue;
                }
                let cx = (gx as f32 + sigmoid(cell(ni, 1, gy, gx))) / gw as f32;
                let cy = (gy as f32 + sigmoid(cell(ni, 2, gy, gx))) / gh as f32;
                let w = sigmoid(cell(ni, 3, gy, gx));
                let h = sigmoid(cell(ni, 4, gy, gx));
                preds.push(Prediction {
                    bbox: BBox::new(cx, cy, w, h),
                    score,
                    class: best,
                });
            }
        }
        out.push(preds);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn head_shapes() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut head = DetectionHead::new(&mut ps, 8, 5, &mut rng);
        let x = Tensor::ones(&[2, 8, 3, 3]);
        let (y, _) = head.forward(&ps, &x, &ForwardCtx::train()).unwrap();
        assert_eq!(y.dims(), &[2, 10, 3, 3]);
    }

    #[test]
    fn head_gradcheck() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let head = DetectionHead::new(&mut ps, 4, 3, &mut rng);
        cq_nn::gradcheck::check_layer_soft(head, ps, &[2, 4, 3, 3], &ForwardCtx::train(), 8e-2);
    }

    #[test]
    fn decode_thresholds_and_geometry() {
        // hand-build raw output: one confident cell at (gy=1, gx=2) of 3x3
        let (n, k, g) = (1usize, 2usize, 3usize);
        let a = 5 + k;
        let mut raw = vec![-10.0f32; n * a * g * g]; // all suppressed
        let set = |raw: &mut Vec<f32>, ch: usize, gy: usize, gx: usize, v: f32| {
            raw[(ch * g + gy) * g + gx] = v;
        };
        set(&mut raw, 0, 1, 2, 6.0); // obj = sigmoid(6) ~ 0.9975
        set(&mut raw, 1, 1, 2, 0.0); // sigmoid 0.5 => cx = 2.5/3
        set(&mut raw, 2, 1, 2, 0.0); // cy = 1.5/3
        set(&mut raw, 3, 1, 2, 0.0); // w = 0.5
        set(&mut raw, 4, 1, 2, 0.0); // h = 0.5
        set(&mut raw, 5, 1, 2, 5.0); // class 0 dominant
        let raw = Tensor::from_vec(raw, &[n, a, g, g]).unwrap();
        let preds = decode_predictions(&raw, k, 0.3);
        assert_eq!(preds[0].len(), 1);
        let p = preds[0][0];
        assert_eq!(p.class, 0);
        assert!((p.bbox.cx - 2.5 / 3.0).abs() < 1e-4);
        assert!((p.bbox.cy - 1.5 / 3.0).abs() < 1e-4);
        assert!((p.bbox.w - 0.5).abs() < 1e-4);
        assert!(p.score > 0.9);
        // raising the threshold suppresses it
        assert!(decode_predictions(&raw, k, 0.999)[0].is_empty());
    }
}
