//! Synthetic detection dataset: images with 1–3 coloured shapes and their
//! ground-truth boxes — the Pascal VOC stand-in for the Table 3 transfer.

use cq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BBox;

/// A ground-truth object: box plus class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtBox {
    /// Normalised box.
    pub bbox: BBox,
    /// Object class (shape archetype).
    pub class: usize,
}

/// Configuration of the synthetic detection dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionConfig {
    /// Square image side.
    pub image_size: usize,
    /// Number of object classes (shape archetypes, ≤ 5).
    pub num_classes: usize,
    /// Maximum objects per image (≥ 1).
    pub max_objects: usize,
    /// Training images.
    pub train_size: usize,
    /// Test images.
    pub test_size: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            image_size: 24,
            num_classes: 5,
            max_objects: 3,
            train_size: 512,
            test_size: 128,
            seed: 4004,
        }
    }
}

impl DetectionConfig {
    /// Overrides the split sizes.
    pub fn with_sizes(mut self, train: usize, test: usize) -> Self {
        self.train_size = train;
        self.test_size = test;
        self
    }
}

/// An in-memory detection dataset.
#[derive(Debug, Clone)]
pub struct DetDataset {
    images: Vec<Tensor>,
    annotations: Vec<Vec<GtBox>>,
    num_classes: usize,
    image_size: usize,
}

impl DetDataset {
    /// Generates train and test splits.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (0 classes, > 5 classes, 0 objects).
    pub fn generate(cfg: &DetectionConfig) -> (DetDataset, DetDataset) {
        assert!(
            (1..=5).contains(&cfg.num_classes),
            "1..=5 shape classes supported"
        );
        assert!(cfg.max_objects >= 1, "max_objects must be >= 1");
        let train = Self::render_split(cfg, cfg.train_size, cfg.seed.wrapping_mul(31));
        let test = Self::render_split(
            cfg,
            cfg.test_size,
            cfg.seed.wrapping_mul(37).wrapping_add(5),
        );
        (train, test)
    }

    fn render_split(cfg: &DetectionConfig, n: usize, seed: u64) -> DetDataset {
        // cq-allow(det-rng-ctor): synthetic dataset rendered from the split seed, regenerated identically each run
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(n);
        let mut annotations = Vec::with_capacity(n);
        for _ in 0..n {
            let (img, anns) = render_scene(cfg, &mut rng);
            images.push(img);
            annotations.push(anns);
        }
        DetDataset {
            images,
            annotations,
            num_classes: cfg.num_classes,
            image_size: cfg.image_size,
        }
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image side length.
    pub fn image_size(&self) -> usize {
        self.image_size
    }

    /// The `i`-th image.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn image(&self, i: usize) -> &Tensor {
        &self.images[i]
    }

    /// Ground truth of the `i`-th image.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn annotations(&self, i: usize) -> &[GtBox] {
        &self.annotations[i]
    }

    /// Stacks images at `indices` into an NCHW batch plus their ground
    /// truths.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<Vec<GtBox>>) {
        let s = self.image_size;
        let mut data = Vec::with_capacity(indices.len() * 3 * s * s);
        let mut anns = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.images[i].as_slice());
            anns.push(self.annotations[i].clone());
        }
        (
            Tensor::from_vec(data, &[indices.len(), 3, s, s]).expect("batch shape"), // cq-check: allow — buffer length matches dims by construction
            anns,
        )
    }
}

/// Class hue (objects are colour+shape coded so transferable colour/shape
/// features from SSL pretraining help).
fn class_color(class: usize) -> [f32; 3] {
    match class {
        0 => [0.95, 0.2, 0.15],
        1 => [0.2, 0.9, 0.25],
        2 => [0.2, 0.35, 0.95],
        3 => [0.95, 0.9, 0.2],
        _ => [0.9, 0.25, 0.9],
    }
}

fn shape_mask(class: usize, u: f32, v: f32) -> bool {
    match class {
        0 => u * u + v * v < 1.0,
        1 => u.abs() < 0.85 && v.abs() < 0.85,
        2 => v > -0.8 && v < 1.4 * (0.8 - u.abs()),
        3 => (u * u + v * v < 1.0) && (u * u + v * v > 0.4),
        _ => u.abs() + v.abs() < 1.0,
    }
}

fn render_scene(cfg: &DetectionConfig, rng: &mut StdRng) -> (Tensor, Vec<GtBox>) {
    let s = cfg.image_size;
    // background gradient
    let bg = rng.gen_range(0.1..0.45f32);
    let tilt = rng.gen_range(-0.2..0.2f32);
    let mut data = vec![0.0f32; 3 * s * s];
    for y in 0..s {
        for x in 0..s {
            let g = (bg + tilt * (x as f32 + y as f32) / (2.0 * s as f32)).clamp(0.0, 1.0);
            data[y * s + x] = g;
            data[s * s + y * s + x] = g;
            data[2 * s * s + y * s + x] = g;
        }
    }
    let count = rng.gen_range(1..=cfg.max_objects);
    let mut anns: Vec<GtBox> = Vec::with_capacity(count);
    for _ in 0..count {
        let class = rng.gen_range(0..cfg.num_classes);
        // try a few times to find a placement with low overlap
        let mut placed = None;
        for _ in 0..8 {
            let w = rng.gen_range(0.25..0.5f32);
            let h = w * rng.gen_range(0.8..1.25);
            let cx = rng.gen_range(w / 2.0..1.0 - w / 2.0);
            let cy = rng.gen_range(h / 2.0..1.0 - h / 2.0);
            let cand = BBox::new(cx, cy, w, h);
            if anns.iter().all(|a| crate::iou(&a.bbox, &cand) < 0.15) {
                placed = Some(cand);
                break;
            }
        }
        let Some(bbox) = placed else { continue };
        let color = class_color(class);
        let shade = rng.gen_range(0.75..1.0f32);
        for y in 0..s {
            for x in 0..s {
                let fx = (x as f32 + 0.5) / s as f32;
                let fy = (y as f32 + 0.5) / s as f32;
                let u = (fx - bbox.cx) / (bbox.w / 2.0);
                let v = (fy - bbox.cy) / (bbox.h / 2.0);
                if u.abs() <= 1.0 && v.abs() <= 1.0 && shape_mask(class, u, v) {
                    for (c, &col) in color.iter().enumerate() {
                        data[c * s * s + y * s + x] = (col * shade).clamp(0.0, 1.0);
                    }
                }
            }
        }
        anns.push(GtBox { bbox, class });
    }
    // cq-check: allow — buffer length matches dims by construction
    let img = Tensor::from_vec(data, &[3, s, s]).expect("scene shape");
    (img, anns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DetectionConfig {
        DetectionConfig {
            train_size: 16,
            test_size: 8,
            ..Default::default()
        }
    }

    #[test]
    fn generation_shapes_and_determinism() {
        let (a, t) = DetDataset::generate(&tiny());
        assert_eq!(a.len(), 16);
        assert_eq!(t.len(), 8);
        assert_eq!(a.image(0).dims(), &[3, 24, 24]);
        let (b, _) = DetDataset::generate(&tiny());
        assert_eq!(a.image(3), b.image(3));
        assert_eq!(a.annotations(3), b.annotations(3));
    }

    #[test]
    fn annotations_in_bounds() {
        let (train, _) = DetDataset::generate(&tiny());
        for i in 0..train.len() {
            let anns = train.annotations(i);
            assert!(!anns.is_empty());
            assert!(anns.len() <= 3);
            for a in anns {
                let (x0, y0, x1, y1) = a.bbox.corners();
                assert!(x0 >= -1e-4 && y0 >= -1e-4 && x1 <= 1.0 + 1e-4 && y1 <= 1.0 + 1e-4);
                assert!(a.class < 5);
            }
        }
    }

    #[test]
    fn objects_render_inside_their_boxes() {
        // pixel colour inside a gt box should differ from the grayscale
        // background somewhere
        let (train, _) = DetDataset::generate(&tiny());
        let s = 24;
        for i in 0..4 {
            let img = train.image(i).as_slice();
            for a in train.annotations(i) {
                // some pixel inside the gt box must be coloured (the ring
                // class is hollow at its exact center, so scan the box)
                let (x0, y0, x1, y1) = a.bbox.corners();
                let mut found = false;
                for y in
                    (y0.max(0.0) * s as f32) as usize..((y1.min(1.0) * s as f32) as usize).min(s)
                {
                    for x in (x0.max(0.0) * s as f32) as usize
                        ..((x1.min(1.0) * s as f32) as usize).min(s)
                    {
                        let idx = y * s + x;
                        let r = img[idx];
                        let g = img[s * s + idx];
                        let b = img[2 * s * s + idx];
                        if (r - g).abs() > 1e-5 || (g - b).abs() > 1e-5 {
                            found = true;
                        }
                    }
                }
                assert!(found, "image {i}: box should contain coloured pixels");
            }
        }
    }

    #[test]
    fn batch_assembly() {
        let (train, _) = DetDataset::generate(&tiny());
        let (x, anns) = train.batch(&[0, 1]);
        assert_eq!(x.dims(), &[2, 3, 24, 24]);
        assert_eq!(anns.len(), 2);
    }

    #[test]
    #[should_panic(expected = "shape classes")]
    fn too_many_classes_rejected() {
        let cfg = DetectionConfig {
            num_classes: 9,
            ..tiny()
        };
        DetDataset::generate(&cfg);
    }
}
