//! YOLO-style training loss with analytic gradients.

use cq_nn::NnError;
use cq_tensor::Tensor;

use crate::GtBox;

/// Loss weights (standard YOLO choices).
const LAMBDA_BOX: f32 = 5.0;
const LAMBDA_NOOBJ: f32 = 0.5;

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// Computes the detection training loss and its gradient w.r.t. the raw
/// head output `[N, 5+K, g, g]`.
///
/// Per ground-truth box, the grid cell containing the box center is
/// responsible: binary cross-entropy pushes its objectness to 1, MSE (on
/// sigmoid-decoded values, weight 5) fits the box, and cross-entropy fits
/// the class. All other cells receive a down-weighted (0.5) no-object BCE.
/// When two ground truths land in one cell, the first claims it.
///
/// # Errors
///
/// Returns an error on shape inconsistencies.
pub fn yolo_loss(
    raw: &Tensor,
    gts: &[Vec<GtBox>],
    num_classes: usize,
) -> Result<(f32, Tensor), NnError> {
    if raw.rank() != 4 || raw.dims()[1] != 5 + num_classes {
        return Err(NnError::BadInput {
            layer: "yolo_loss".into(),
            expected: format!("[N, {}, g, g]", 5 + num_classes),
            got: raw.dims().to_vec(),
        });
    }
    let (n, a, gh, gw) = (raw.dims()[0], raw.dims()[1], raw.dims()[2], raw.dims()[3]);
    if gts.len() != n {
        return Err(NnError::BadInput {
            layer: "yolo_loss".into(),
            expected: format!("{n} ground-truth lists"),
            got: vec![gts.len()],
        });
    }
    let rs = raw.as_slice();
    let idx = |ni: usize, ch: usize, gy: usize, gx: usize| ((ni * a + ch) * gh + gy) * gw + gx;

    let mut loss = 0.0f32;
    let mut grad = vec![0.0f32; raw.len()];
    let norm = n as f32;

    for (ni, anns) in gts.iter().enumerate() {
        // Which cell is responsible for which annotation.
        let mut responsible: Vec<Option<&GtBox>> = vec![None; gh * gw];
        for gt in anns {
            let gx = ((gt.bbox.cx * gw as f32) as usize).min(gw - 1);
            let gy = ((gt.bbox.cy * gh as f32) as usize).min(gh - 1);
            if responsible[gy * gw + gx].is_none() {
                responsible[gy * gw + gx] = Some(gt);
            }
        }
        for gy in 0..gh {
            for gx in 0..gw {
                let o = rs[idx(ni, 0, gy, gx)];
                let p_obj = sigmoid(o);
                match responsible[gy * gw + gx] {
                    Some(gt) => {
                        // objectness -> 1
                        loss += -(p_obj.max(1e-7)).ln() / norm;
                        grad[idx(ni, 0, gy, gx)] += (p_obj - 1.0) / norm;
                        // box regression on sigmoid-decoded coordinates
                        let targets = [
                            gt.bbox.cx * gw as f32 - gx as f32,
                            gt.bbox.cy * gh as f32 - gy as f32,
                            gt.bbox.w,
                            gt.bbox.h,
                        ];
                        for (ch, &target) in (1..5).zip(&targets) {
                            let t = rs[idx(ni, ch, gy, gx)];
                            let st = sigmoid(t);
                            let diff = st - target.clamp(0.0, 1.0);
                            loss += LAMBDA_BOX * diff * diff / norm; // cq-allow(no-naive-hot-loop): per-cell box loss/grad; elementwise over anchor grid, no matrix structure
                            grad[idx(ni, ch, gy, gx)] +=
                                LAMBDA_BOX * 2.0 * diff * st * (1.0 - st) / norm;
                        }
                        // class cross-entropy
                        let logits: Vec<f32> = (0..num_classes)
                            .map(|k| rs[idx(ni, 5 + k, gy, gx)])
                            .collect();
                        let mx = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                        let sum: f32 = logits.iter().map(|&v| (v - mx).exp()).sum();
                        let lse = sum.ln() + mx;
                        loss += (lse - logits[gt.class]) / norm;
                        for (k, &l) in logits.iter().enumerate() {
                            let p = (l - lse).exp();
                            grad[idx(ni, 5 + k, gy, gx)] +=
                                (p - if k == gt.class { 1.0 } else { 0.0 }) / norm;
                        }
                    }
                    None => {
                        // objectness -> 0, down-weighted
                        loss += -LAMBDA_NOOBJ * (1.0 - p_obj).max(1e-7).ln() / norm; // cq-allow(no-naive-hot-loop): per-cell objectness loss/grad; elementwise over anchor grid
                        grad[idx(ni, 0, gy, gx)] += LAMBDA_NOOBJ * p_obj / norm;
                    }
                }
            }
        }
    }
    Ok((loss, Tensor::from_vec(grad, raw.dims())?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BBox;
    use rand::SeedableRng;

    fn one_gt() -> Vec<Vec<GtBox>> {
        vec![vec![GtBox {
            bbox: BBox::new(0.5, 0.5, 0.4, 0.4),
            class: 1,
        }]]
    }

    #[test]
    fn loss_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let raw = Tensor::randn(&[1, 5 + 3, 3, 3], 0.0, 1.0, &mut rng);
        let gts = one_gt();
        let (_, grad) = yolo_loss(&raw, &gts, 3).unwrap();
        let eps = 1e-3;
        for idx in (0..raw.len()).step_by(7) {
            let mut rp = raw.clone();
            rp.as_mut_slice()[idx] += eps;
            let mut rm = raw.clone();
            rm.as_mut_slice()[idx] -= eps;
            let fd = (yolo_loss(&rp, &gts, 3).unwrap().0 - yolo_loss(&rm, &gts, 3).unwrap().0)
                / (2.0 * eps);
            let an = grad.as_slice()[idx];
            assert!((fd - an).abs() < 1e-3, "[{idx}]: fd {fd} vs {an}");
        }
    }

    #[test]
    fn perfect_prediction_has_small_loss() {
        // Build a raw tensor decoding exactly to the gt.
        let gts = one_gt();
        let (g, k) = (3usize, 3usize);
        let a = 5 + k;
        let mut raw = vec![-12.0f32; a * g * g]; // all no-obj, sigmoid ~ 0
                                                 // gt center (0.5, 0.5) -> cell (1,1), offsets 0.5 -> logit 0
        let set = |raw: &mut Vec<f32>, ch: usize, v: f32| raw[(ch * g + 1) * g + 1] = v;
        set(&mut raw, 0, 12.0);
        set(&mut raw, 1, 0.0);
        set(&mut raw, 2, 0.0);
        // w = h = 0.4 => logit = ln(0.4/0.6)
        let wl = (0.4f32 / 0.6).ln();
        set(&mut raw, 3, wl);
        set(&mut raw, 4, wl);
        set(&mut raw, 6, 12.0); // class 1 dominant
        let raw = Tensor::from_vec(raw, &[1, a, g, g]).unwrap();
        let (loss, _) = yolo_loss(&raw, &gts, k).unwrap();
        assert!(loss < 0.01, "near-perfect prediction loss {loss}");

        // A bad prediction must cost more.
        let bad = Tensor::zeros(&[1, a, g, g]);
        let (bad_loss, _) = yolo_loss(&bad, &gts, k).unwrap();
        assert!(bad_loss > loss * 10.0);
    }

    #[test]
    fn validates_shapes() {
        let raw = Tensor::zeros(&[1, 8, 3, 3]);
        assert!(yolo_loss(&raw, &one_gt(), 4).is_err()); // 5+4 != 8
        let ok = Tensor::zeros(&[2, 8, 3, 3]);
        assert!(yolo_loss(&ok, &one_gt(), 3).is_err()); // 1 gt list for 2 images
    }

    #[test]
    fn empty_annotations_are_pure_noobj() {
        let raw = Tensor::zeros(&[1, 8, 2, 2]);
        let (loss, grad) = yolo_loss(&raw, &[vec![]], 3).unwrap();
        // all 4 cells: 0.5 * -ln(0.5)
        let expected = 4.0 * 0.5 * (2.0f32).ln();
        assert!((loss - expected).abs() < 1e-5);
        // gradient only on objectness channel
        for ch in 1..8 {
            for c in 0..4 {
                assert_eq!(grad.as_slice()[ch * 4 + c], 0.0);
            }
        }
    }
}
