//! Axis-aligned bounding boxes, IoU and non-maximum suppression.

/// An axis-aligned box in normalised `[0, 1]` center-size coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Center x.
    pub cx: f32,
    /// Center y.
    pub cy: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
}

impl BBox {
    /// Creates a box, clamping size to be non-negative.
    pub fn new(cx: f32, cy: f32, w: f32, h: f32) -> Self {
        BBox {
            cx,
            cy,
            w: w.max(0.0),
            h: h.max(0.0),
        }
    }

    /// Corner coordinates `(x0, y0, x1, y1)`.
    pub fn corners(&self) -> (f32, f32, f32, f32) {
        (
            self.cx - self.w / 2.0,
            self.cy - self.h / 2.0,
            self.cx + self.w / 2.0,
            self.cy + self.h / 2.0,
        )
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        self.w * self.h
    }
}

/// Intersection-over-union of two boxes, in `[0, 1]`.
pub fn iou(a: &BBox, b: &BBox) -> f32 {
    let (ax0, ay0, ax1, ay1) = a.corners();
    let (bx0, by0, bx1, by1) = b.corners();
    let ix = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
    let iy = (ay1.min(by1) - ay0.max(by0)).max(0.0);
    let inter = ix * iy;
    let union = a.area() + b.area() - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Greedy non-maximum suppression: keeps the highest-scoring boxes,
/// dropping any box with IoU above `thresh` against an already-kept box
/// of the same class. Returns indices into the input, descending by
/// score.
pub fn nms(boxes: &[BBox], scores: &[f32], classes: &[usize], thresh: f32) -> Vec<usize> {
    assert_eq!(boxes.len(), scores.len());
    assert_eq!(boxes.len(), classes.len());
    let mut order: Vec<usize> = (0..boxes.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut keep = Vec::new();
    for &i in &order {
        let suppressed = keep
            .iter()
            .any(|&k: &usize| classes[k] == classes[i] && iou(&boxes[k], &boxes[i]) > thresh);
        if !suppressed {
            keep.push(i);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_identical_is_one() {
        let b = BBox::new(0.5, 0.5, 0.2, 0.2);
        assert!((iou(&b, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = BBox::new(0.2, 0.2, 0.1, 0.1);
        let b = BBox::new(0.8, 0.8, 0.1, 0.1);
        assert_eq!(iou(&a, &b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        // two unit-width boxes offset by half a width: inter = 0.5, union = 1.5
        let a = BBox::new(0.5, 0.5, 0.2, 0.2);
        let b = BBox::new(0.6, 0.5, 0.2, 0.2);
        let expected = 0.1 * 0.2 / (2.0 * 0.04 - 0.02);
        assert!((iou(&a, &b) - expected).abs() < 1e-5);
    }

    #[test]
    fn iou_zero_area_boxes() {
        let a = BBox::new(0.5, 0.5, 0.0, 0.0);
        assert_eq!(iou(&a, &a), 0.0);
    }

    #[test]
    fn nms_suppresses_same_class_overlaps() {
        let boxes = vec![
            BBox::new(0.5, 0.5, 0.2, 0.2),
            BBox::new(0.51, 0.5, 0.2, 0.2), // overlaps box 0
            BBox::new(0.9, 0.9, 0.1, 0.1),  // far away
        ];
        let keep = nms(&boxes, &[0.9, 0.8, 0.7], &[0, 0, 0], 0.5);
        assert_eq!(keep, vec![0, 2]);
    }

    #[test]
    fn nms_keeps_cross_class_overlaps() {
        let boxes = vec![BBox::new(0.5, 0.5, 0.2, 0.2), BBox::new(0.5, 0.5, 0.2, 0.2)];
        let keep = nms(&boxes, &[0.9, 0.8], &[0, 1], 0.5);
        assert_eq!(keep.len(), 2);
    }

    #[test]
    fn nms_orders_by_score() {
        let boxes = vec![BBox::new(0.2, 0.2, 0.1, 0.1), BBox::new(0.8, 0.8, 0.1, 0.1)];
        let keep = nms(&boxes, &[0.3, 0.9], &[0, 0], 0.5);
        assert_eq!(keep, vec![1, 0]);
    }
}
