//! Semi-supervised fine-tuning (paper §4.1): classifier on the encoder,
//! trained end-to-end on a stratified label subset, under a fixed
//! precision (FP or 4-bit).

use cq_data::{BatchIter, Dataset};
use cq_models::Encoder;
use cq_nn::{
    accuracy, softmax_cross_entropy, CosineSchedule, ForwardCtx, Layer, Linear, NnError, Sgd,
    SgdConfig,
};
use cq_quant::{Precision, QuantConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fine-tuning hyper-parameters. Defaults follow the paper: SGD with
/// momentum 0.9, cosine decay from lr 0.1.
#[derive(Debug, Clone, PartialEq)]
pub struct FinetuneConfig {
    /// Fraction of training labels available (1.0, 0.1 or 0.01 in the
    /// paper's tables).
    pub label_fraction: f32,
    /// Fixed precision the model is fine-tuned and evaluated under
    /// (`Precision::Fp` or 4-bit in the paper).
    pub precision: Precision,
    /// Fine-tuning epochs (paper: 50; scale down for CPU runs).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (cosine-decayed).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Seed for the label subset and batch order.
    pub seed: u64,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig {
            label_fraction: 0.1,
            precision: Precision::Fp,
            epochs: 10,
            batch_size: 64,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 7,
        }
    }
}

/// Outcome of a fine-tuning run.
#[derive(Debug, Clone)]
pub struct FinetuneResult {
    /// Top-1 accuracy on the test set (percent, 0–100).
    pub test_acc: f32,
    /// Top-1 accuracy on the (subset) training data (percent).
    pub train_acc: f32,
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Number of labelled examples used.
    pub labelled: usize,
}

/// Fine-tunes a copy of `encoder` on a stratified `label_fraction` subset
/// of `train`, evaluating on `test` under the same fixed precision.
///
/// The input encoder is left untouched (the same pretrained checkpoint is
/// reused across the FP / 4-bit × 10% / 1% grid of the paper's tables).
///
/// # Errors
///
/// Propagates layer/optimizer errors.
pub fn finetune(
    encoder: &Encoder,
    train: &Dataset,
    test: &Dataset,
    cfg: &FinetuneConfig,
) -> Result<FinetuneResult, NnError> {
    // cq-allow(det-rng-ctor): evaluation protocol is un-checkpointed; its stream replays from cfg.seed
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let subset = train.stratified_subset(cfg.label_fraction, &mut rng);

    let mut model = encoder.duplicate()?;
    let feat_dim = model.feat_dim();
    let mut classifier = Linear::new(
        model.params_mut(),
        "classifier",
        feat_dim,
        train.num_classes(),
        true,
        &mut rng,
    );
    let mut opt = Sgd::new(
        model.params(),
        SgdConfig {
            lr: cfg.lr,
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
            nesterov: false,
        },
    );
    let quant = QuantConfig::uniform(cfg.precision);
    let train_ctx = ForwardCtx::train().with_quant(quant);
    let eval_ctx = ForwardCtx::eval().with_quant(quant);

    let steps_per_epoch = (subset.len() / cfg.batch_size).max(1);
    let sched = CosineSchedule::new(cfg.lr, cfg.epochs * steps_per_epoch, 0);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut step = 0usize;
    for _ in 0..cfg.epochs {
        let mut losses = Vec::new();
        // When the subset is smaller than one batch, use it whole.
        let bs = cfg.batch_size.min(subset.len());
        for (x, labels) in BatchIter::new(&subset, bs, &mut rng) {
            let out = model.forward(&x, &train_ctx)?;
            let (logits, head_cache) =
                classifier.forward(model.params(), &out.features, &train_ctx)?;
            let lo = softmax_cross_entropy(&logits, &labels)?;
            let mut gs = model.params().zero_grads();
            let dh = classifier.backward(model.params(), &head_cache, &lo.grad, &mut gs)?;
            model.backward_features(&out.trace, &dh, &mut gs)?;
            if gs.is_finite() {
                opt.step(model.params_mut(), &gs, sched.lr_at(step))?;
                losses.push(lo.loss);
            }
            step += 1;
        }
        epoch_losses.push(if losses.is_empty() {
            f32::NAN
        } else {
            // cq-allow(det-float-accum): per-batch losses averaged in batch order
            losses.iter().sum::<f32>() / losses.len() as f32
        });
    }

    let evaluate =
        |model: &mut Encoder, classifier: &mut Linear, ds: &Dataset| -> Result<f32, NnError> {
            let mut correct_weighted = 0.0f32;
            let mut total = 0usize;
            let bs = 64usize.min(ds.len().max(1));
            let mut i = 0;
            while i < ds.len() {
                let end = (i + bs).min(ds.len());
                let idxs: Vec<usize> = (i..end).collect();
                let (x, labels) = ds.batch(&idxs);
                let h = model.features(&x, &eval_ctx)?;
                let (logits, _) = classifier.forward(model.params(), &h, &eval_ctx)?;
                correct_weighted += accuracy(&logits, &labels) * labels.len() as f32;
                total += labels.len();
                i = end;
            }
            Ok(100.0 * correct_weighted / total.max(1) as f32)
        };
    let test_acc = evaluate(&mut model, &mut classifier, test)?;
    let train_acc = evaluate(&mut model, &mut classifier, &subset)?;
    Ok(FinetuneResult {
        test_acc,
        train_acc,
        epoch_losses,
        labelled: subset.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::DatasetConfig;
    use cq_models::{Arch, EncoderConfig};

    fn setup() -> (Encoder, Dataset, Dataset) {
        let enc = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8), 0).unwrap();
        let (train, test) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(80, 40));
        (enc, train, test)
    }

    #[test]
    fn finetune_runs_and_beats_chance_on_full_labels() {
        let (enc, train, test) = setup();
        let cfg = FinetuneConfig {
            label_fraction: 1.0,
            epochs: 8,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        };
        let res = finetune(&enc, &train, &test, &cfg).unwrap();
        assert_eq!(res.labelled, 80);
        // 10 classes => chance is 10%; even a scratch encoder should learn
        // something on this easy synthetic set.
        assert!(
            res.test_acc > 12.0,
            "test acc {} should beat chance",
            res.test_acc
        );
        assert!(res.train_acc >= res.test_acc * 0.5);
        assert_eq!(res.epoch_losses.len(), 8);
    }

    #[test]
    fn finetune_does_not_mutate_input_encoder() {
        let (enc, train, test) = setup();
        let before: f32 = enc.params().iter().map(|(_, _, t)| t.sum()).sum();
        let cfg = FinetuneConfig {
            epochs: 1,
            batch_size: 16,
            ..Default::default()
        };
        finetune(&enc, &train, &test, &cfg).unwrap();
        let after: f32 = enc.params().iter().map(|(_, _, t)| t.sum()).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn one_percent_labels_still_runs() {
        let (enc, train, test) = setup();
        let cfg = FinetuneConfig {
            label_fraction: 0.01,
            epochs: 2,
            batch_size: 16,
            ..Default::default()
        };
        let res = finetune(&enc, &train, &test, &cfg).unwrap();
        assert_eq!(res.labelled, 10); // 1 per class minimum
        assert!(res.test_acc.is_finite());
    }

    #[test]
    fn four_bit_finetune_runs() {
        let (enc, train, test) = setup();
        let cfg = FinetuneConfig {
            precision: Precision::Bits(4),
            epochs: 2,
            batch_size: 16,
            ..Default::default()
        };
        let res = finetune(&enc, &train, &test, &cfg).unwrap();
        assert!(res.test_acc.is_finite());
    }

    #[test]
    fn finetune_is_deterministic() {
        let (enc, train, test) = setup();
        let cfg = FinetuneConfig {
            epochs: 2,
            batch_size: 16,
            ..Default::default()
        };
        let a = finetune(&enc, &train, &test, &cfg).unwrap();
        let b = finetune(&enc, &train, &test, &cfg).unwrap();
        assert_eq!(a.test_acc, b.test_acc);
    }
}
