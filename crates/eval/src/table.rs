//! Minimal markdown / CSV table writer used by every experiment binary to
//! print paper-style result tables.

use std::fmt::Write as _;
use std::path::Path;

/// A simple result table: title, column headers and string rows.
///
/// # Example
///
/// ```
/// use cq_eval::Table;
///
/// let mut t = Table::new("Table 1", &["Network", "Method", "Acc."]);
/// t.row(&["ResNet-18", "SimCLR", "42.44"]);
/// t.row(&["ResNet-18", "CQ-A", "51.39"]);
/// let md = t.to_markdown();
/// assert!(md.contains("| ResNet-18 | CQ-A | 51.39 |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings (for formatted numbers).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "### {}\n", self.title);
        let _ = writeln!(s, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(s, "| {} |", r.join(" | "));
        }
        s
    }

    /// Renders CSV (headers + rows; commas in cells are replaced with `;`).
    pub fn to_csv(&self) -> String {
        let clean = |c: &str| c.replace(',', ";");
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{}",
            self.headers
                .iter()
                .map(|h| clean(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{}",
                r.iter().map(|c| clean(c)).collect::<Vec<_>>().join(",")
            );
        }
        s
    }

    /// Prints the markdown rendering to stdout.
    pub fn print(&self) {
        // cq-check: allow — the rendered table IS this binary's output
        println!("{}", self.to_markdown());
    }

    /// Writes the CSV rendering to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["1", "2"]).row(&["3", "4"]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 3 | 4 |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_rendering_escapes_commas() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1,5"]);
        assert_eq!(t.to_csv(), "a\n1;5\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        Table::new("x", &["a", "b"]).row(&["only one"]);
    }

    #[test]
    fn row_owned_formats() {
        let mut t = Table::new("x", &["v"]);
        t.row_owned(vec![format!("{:.2}", 1.234f32)]);
        assert!(t.to_markdown().contains("1.23"));
    }
}
