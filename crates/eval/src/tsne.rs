//! Exact t-SNE (van der Maaten & Hinton, 2008) for the Fig. 2
//! reproduction. O(N²) affinities — fine at the N ≤ 1k scale of the
//! scaled experiment protocol.

use cq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f32,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub lr: f32,
    /// Early-exaggeration factor applied for the first quarter of the
    /// iterations.
    pub exaggeration: f32,
    /// Seed for the initial embedding.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 15.0,
            iterations: 300,
            lr: 100.0,
            exaggeration: 4.0,
            seed: 0,
        }
    }
}

/// Embeds an `[N, D]` feature matrix into `[N, 2]` with exact t-SNE.
///
/// # Panics
///
/// Panics if `features` is not rank 2 or `N < 5`.
pub fn tsne(features: &Tensor, cfg: &TsneConfig) -> Tensor {
    assert_eq!(features.rank(), 2, "tsne expects [N, D]");
    let (n, d) = (features.dims()[0], features.dims()[1]);
    assert!(n >= 5, "tsne needs at least 5 points");
    let fs = features.as_slice();

    // Pairwise squared distances.
    let mut d2 = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut acc = 0.0f32;
            for k in 0..d {
                let diff = fs[i * d + k] - fs[j * d + k];
                // cq-allow(no-naive-hot-loop): offline diagnostic on a few hundred points; pairwise distances, not a hot-path matmul
                acc += diff * diff;
            }
            d2[i * n + j] = acc;
            d2[j * n + i] = acc;
        }
    }

    // Per-point binary search for the bandwidth matching the perplexity.
    let target_entropy = cfg.perplexity.ln();
    let mut p = vec![0.0f32; n * n];
    for i in 0..n {
        let row = &d2[i * n..(i + 1) * n];
        let mut beta = 1.0f32; // 1 / (2 sigma^2)
        let (mut lo, mut hi) = (0.0f32, f32::INFINITY);
        for _ in 0..50 {
            // conditional distribution at this beta
            let mut sum = 0.0f32;
            let mut sum_dp = 0.0f32;
            for (j, &dist) in row.iter().enumerate() {
                if j == i {
                    continue;
                }
                let pij = (-beta * dist).exp();
                sum += pij;
                // cq-allow(no-naive-hot-loop): perplexity binary search accumulator; offline diagnostic, tiny n
                sum_dp += pij * dist;
            }
            if sum <= 0.0 {
                break;
            }
            // H = ln(sum) + beta * E[d]
            let h = sum.ln() + beta * sum_dp / sum;
            if (h - target_entropy).abs() < 1e-4 {
                break;
            }
            if h > target_entropy {
                lo = beta;
                beta = if hi.is_finite() {
                    0.5 * (beta + hi)
                } else {
                    beta * 2.0
                };
            } else {
                hi = beta;
                beta = 0.5 * (beta + lo);
            }
        }
        let mut sum = 0.0f32;
        for (j, &dist) in row.iter().enumerate() {
            if j != i {
                let v = (-beta * dist).exp();
                p[i * n + j] = v;
                sum += v;
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrize.
    let mut pij = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f32)).max(1e-12);
        }
    }

    // Gradient descent on the 2-D embedding.
    // cq-allow(det-rng-ctor): visualization is un-checkpointed; its stream replays from cfg.seed
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut y = Tensor::randn(&[n, 2], 0.0, 1e-2, &mut rng).into_vec();
    let mut vel = vec![0.0f32; n * 2];
    let exag_until = cfg.iterations / 4;
    for it in 0..cfg.iterations {
        let exag = if it < exag_until {
            cfg.exaggeration
        } else {
            1.0
        };
        // Student-t affinities in embedding space.
        let mut qnum = vec![0.0f32; n * n];
        let mut qsum = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                let dy0 = y[i * 2] - y[j * 2];
                let dy1 = y[i * 2 + 1] - y[j * 2 + 1];
                let q = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
                qnum[i * n + j] = q;
                qnum[j * n + i] = q;
                // cq-allow(no-naive-hot-loop): Student-t normalizer accumulation; offline diagnostic, tiny n
                qsum += 2.0 * q;
            }
        }
        let qsum = qsum.max(1e-12);
        let momentum = if it < exag_until { 0.5 } else { 0.8 };
        // Synchronous update: all gradients from the same snapshot of y
        // (asynchronous updates amplify with momentum and diverge).
        let mut grad = vec![0.0f32; n * 2];
        for i in 0..n {
            let mut g0 = 0.0f32;
            let mut g1 = 0.0f32;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let qn = qnum[i * n + j];
                let coef = 4.0 * (exag * pij[i * n + j] - qn / qsum) * qn;
                g0 += coef * (y[i * 2] - y[j * 2]); // cq-allow(no-naive-hot-loop): KL gradient over 2-D embedding; offline diagnostic, tiny n
                g1 += coef * (y[i * 2 + 1] - y[j * 2 + 1]);
            }
            grad[i * 2] = g0;
            grad[i * 2 + 1] = g1;
        }
        for k in 0..n * 2 {
            vel[k] = momentum * vel[k] - cfg.lr * grad[k];
            y[k] += vel[k];
        }
        // Recentre to remove the translational degree of freedom.
        let (mut m0, mut m1) = (0.0f32, 0.0f32);
        for i in 0..n {
            m0 += y[i * 2];
            m1 += y[i * 2 + 1];
        }
        m0 /= n as f32;
        m1 /= n as f32;
        for i in 0..n {
            y[i * 2] -= m0;
            y[i * 2 + 1] -= m1;
        }
    }
    Tensor::from_vec(y, &[n, 2]).expect("embedding shape") // cq-check: allow — buffer length matches dims by construction
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn_accuracy;

    /// Three well-separated Gaussian blobs in 10-D.
    fn blobs() -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for _ in 0..15 {
                for k in 0..10 {
                    let center = if k == c { 8.0 } else { 0.0 };
                    data.push(center + Tensor::randn(&[1], 0.0, 0.5, &mut rng).item());
                }
                labels.push(c);
            }
        }
        (Tensor::from_vec(data, &[45, 10]).unwrap(), labels)
    }

    #[test]
    fn tsne_preserves_cluster_structure() {
        let (f, labels) = blobs();
        // perplexity must stay below the per-cluster point count (15)
        let emb = tsne(
            &f,
            &TsneConfig {
                iterations: 500,
                perplexity: 8.0,
                lr: 50.0,
                ..Default::default()
            },
        );
        assert_eq!(emb.dims(), &[45, 2]);
        assert!(emb.is_finite());
        // cluster structure survives the embedding
        let acc = knn_accuracy(&emb, &labels, 5);
        assert!(acc > 90.0, "knn in embedding space: {acc}");
    }

    #[test]
    fn tsne_deterministic_under_seed() {
        let (f, _) = blobs();
        let cfg = TsneConfig {
            iterations: 50,
            ..Default::default()
        };
        assert_eq!(tsne(&f, &cfg), tsne(&f, &cfg));
    }

    #[test]
    #[should_panic(expected = "at least 5")]
    fn tsne_rejects_tiny_inputs() {
        tsne(&Tensor::zeros(&[3, 4]), &TsneConfig::default());
    }
}
