//! Linear evaluation: multinomial logistic regression on frozen features
//! (paper Tables 2 and 5).

use cq_core::extract_features;
use cq_data::Dataset;
use cq_models::Encoder;
use cq_nn::{accuracy, softmax_cross_entropy, CosineSchedule, NnError};
use cq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Linear-evaluation hyper-parameters (paper §4.1: SGD momentum 0.9,
/// cosine decay from 0.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearEvalConfig {
    /// Training epochs over the feature matrix.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Seed for batch order and probe init.
    pub seed: u64,
}

impl Default for LinearEvalConfig {
    fn default() -> Self {
        LinearEvalConfig {
            epochs: 40,
            batch_size: 64,
            lr: 0.1,
            momentum: 0.9,
            seed: 11,
        }
    }
}

/// Trains a linear probe on frozen features of `train` and returns the
/// top-1 test accuracy (percent).
///
/// Features are extracted once in eval mode at full precision, then a
/// softmax-regression probe is trained directly on the feature matrices —
/// the backbone receives no gradient, exactly matching the protocol.
///
/// # Errors
///
/// Propagates layer errors from feature extraction.
pub fn linear_eval(
    encoder: &mut Encoder,
    train: &Dataset,
    test: &Dataset,
    cfg: &LinearEvalConfig,
) -> Result<f32, NnError> {
    let (ftr, ltr) = extract_features(encoder, train, 64)?;
    let (fte, lte) = extract_features(encoder, test, 64)?;
    let num_classes = train.num_classes();
    let d = encoder.feat_dim();
    let n = train.len();

    // Standardise features (helps SGD conditioning; fit on train only).
    let (ftr, fte) = standardise(&ftr, &fte, d);

    // cq-allow(det-rng-ctor): evaluation protocol is un-checkpointed; its stream replays from cfg.seed
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut w = Tensor::xavier_uniform(&[num_classes, d], d, num_classes, &mut rng);
    let mut b = Tensor::zeros(&[num_classes]);
    let mut vw = Tensor::zeros(&[num_classes, d]);
    let mut vb = Tensor::zeros(&[num_classes]);

    let bs = cfg.batch_size.min(n).max(1);
    let steps_per_epoch = (n / bs).max(1);
    let sched = CosineSchedule::new(cfg.lr, cfg.epochs * steps_per_epoch, 0);
    let mut step = 0usize;
    for _ in 0..cfg.epochs {
        let perm = Tensor::permutation(n, &mut rng);
        for chunk in perm.chunks(bs) {
            if chunk.len() < 2 {
                continue;
            }
            // gather batch
            let mut xb = Vec::with_capacity(chunk.len() * d);
            let mut yb = Vec::with_capacity(chunk.len());
            for &i in chunk {
                xb.extend_from_slice(&ftr.as_slice()[i * d..(i + 1) * d]);
                yb.push(ltr[i]);
            }
            let xb = Tensor::from_vec(xb, &[chunk.len(), d])?;
            let logits = xb.matmul_nt(&w)?.add_broadcast(&b)?;
            let lo = softmax_cross_entropy(&logits, &yb)?;
            let dw = lo.grad.matmul_tn(&xb)?;
            let db = lo.grad.sum_axis(0)?;
            let lr = sched.lr_at(step);
            step += 1;
            // momentum update
            for ((wv, vv), &g) in w
                .as_mut_slice()
                .iter_mut()
                .zip(vw.as_mut_slice())
                .zip(dw.as_slice())
            {
                *vv = cfg.momentum * *vv + g;
                *wv -= lr * *vv;
            }
            for ((bv, vv), &g) in b
                .as_mut_slice()
                .iter_mut()
                .zip(vb.as_mut_slice())
                .zip(db.as_slice())
            {
                *vv = cfg.momentum * *vv + g;
                *bv -= lr * *vv;
            }
        }
    }
    let logits = fte.matmul_nt(&w)?.add_broadcast(&b)?;
    Ok(100.0 * accuracy(&logits, &lte))
}

/// Per-dimension standardisation fitted on the training features.
fn standardise(ftr: &Tensor, fte: &Tensor, d: usize) -> (Tensor, Tensor) {
    let n = ftr.dims()[0];
    let mut mean = vec![0.0f32; d];
    let mut var = vec![0.0f32; d];
    for i in 0..n {
        for (k, mv) in mean.iter_mut().enumerate() {
            *mv += ftr.as_slice()[i * d + k];
        }
    }
    for m in &mut mean {
        *m /= n as f32;
    }
    for i in 0..n {
        for k in 0..d {
            let x = ftr.as_slice()[i * d + k] - mean[k];
            var[k] += x * x;
        }
    }
    for v in &mut var {
        *v = (*v / n as f32).sqrt().max(1e-6);
    }
    let apply = |f: &Tensor| {
        let rows = f.dims()[0];
        let mut out = f.as_slice().to_vec();
        for i in 0..rows {
            for k in 0..d {
                out[i * d + k] = (out[i * d + k] - mean[k]) / var[k];
            }
        }
        Tensor::from_vec(out, f.dims()).expect("standardise preserves shape") // cq-check: allow — buffer length matches dims by construction
    };
    (apply(ftr), apply(fte))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::DatasetConfig;
    use cq_models::{Arch, EncoderConfig};

    #[test]
    fn linear_eval_beats_chance_even_untrained() {
        // random conv features are a known-decent representation; the
        // probe should beat 10% chance on the easy synthetic set.
        let mut enc =
            Encoder::new(&EncoderConfig::new(Arch::ResNet18, 4).with_proj(16, 8), 1).unwrap();
        let (train, test) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(200, 100));
        let acc = linear_eval(
            &mut enc,
            &train,
            &test,
            &LinearEvalConfig {
                epochs: 20,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(acc > 12.0, "acc {acc}");
    }

    #[test]
    fn linear_eval_is_deterministic() {
        let mut enc =
            Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8), 2).unwrap();
        let (train, test) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(60, 30));
        let cfg = LinearEvalConfig {
            epochs: 3,
            ..Default::default()
        };
        let a = linear_eval(&mut enc, &train, &test, &cfg).unwrap();
        let b = linear_eval(&mut enc, &train, &test, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn standardise_zero_means_unit_var() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let f = Tensor::randn(&[50, 4], 3.0, 2.0, &mut rng);
        let (s, _) = standardise(&f, &f, 4);
        for k in 0..4 {
            let col: Vec<f32> = (0..50).map(|i| s.as_slice()[i * 4 + k]).collect();
            let t = Tensor::from_slice(&col);
            assert!(t.mean().abs() < 1e-4);
            assert!((t.variance() - 1.0).abs() < 1e-2);
        }
    }
}
