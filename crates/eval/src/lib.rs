//! # cq-eval
//!
//! Evaluation harness for the Contrastive Quant reproduction, implementing
//! the paper's three evaluation settings (§4.1):
//!
//! - **fine-tuning** ([`finetune`]): attach a classifier to the pretrained
//!   encoder and train end-to-end on a 10% / 1% stratified label subset,
//!   under a fixed precision (FP or 4-bit);
//! - **linear evaluation** ([`linear_eval`]): logistic regression on
//!   frozen features;
//! - **transfer** lives in `cq-detect` (detection).
//!
//! Plus the Fig. 2 tooling: an exact t-SNE implementation ([`tsne`]) and
//! quantitative separability metrics ([`knn_accuracy`],
//! [`separability_ratio`]), and a small markdown/CSV table writer used by
//! every experiment binary.

#![deny(missing_docs)]

mod finetune;
mod linear;
mod metrics;
mod table;
mod tsne;

pub use finetune::{finetune, FinetuneConfig, FinetuneResult};
pub use linear::{linear_eval, LinearEvalConfig};
pub use metrics::{confusion_matrix, knn_accuracy, separability_ratio};
pub use table::Table;
pub use tsne::{tsne, TsneConfig};
