//! Representation-quality metrics used to quantify Fig. 2's visual claim
//! ("representations learned by Contrastive Quant show better linear
//! separability").

use cq_tensor::Tensor;

/// Leave-one-out k-nearest-neighbour accuracy of a feature matrix
/// `[N, D]` under Euclidean distance, in percent.
///
/// # Panics
///
/// Panics if shapes are inconsistent or `k == 0`.
pub fn knn_accuracy(features: &Tensor, labels: &[usize], k: usize) -> f32 {
    assert_eq!(features.rank(), 2, "knn expects [N, D]");
    assert!(k > 0, "k must be positive");
    let (n, d) = (features.dims()[0], features.dims()[1]);
    assert_eq!(labels.len(), n);
    if n < 2 {
        return 0.0;
    }
    let fs = features.as_slice();
    let mut correct = 0usize;
    for i in 0..n {
        let fi = &fs[i * d..(i + 1) * d];
        // (distance, label) for all j != i
        let mut dists: Vec<(f32, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let fj = &fs[j * d..(j + 1) * d];
                let dist: f32 = fi.iter().zip(fj).map(|(&a, &b)| (a - b) * (a - b)).sum();
                (dist, labels[j])
            })
            .collect();
        let kk = k.min(dists.len());
        dists.select_nth_unstable_by(kk - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        // BTreeMap, not HashMap: max_by_key takes the last maximum in
        // iteration order, so vote ties must break by label, not by
        // whatever SipHash key this process drew.
        let mut votes = std::collections::BTreeMap::new();
        for &(_, l) in &dists[..kk] {
            *votes.entry(l).or_insert(0usize) += 1;
        }
        // kk >= 1, so votes is never empty; the fallback is unreachable.
        let pred = votes
            .into_iter()
            .max_by_key(|&(_, c)| c)
            .map_or(labels[i], |(l, _)| l);
        if pred == labels[i] {
            correct += 1;
        }
    }
    100.0 * correct as f32 / n as f32
}

/// Ratio of mean between-class centroid distance to mean within-class
/// scatter — higher means more separable clusters (a scalar summary of
/// what Fig. 2's t-SNE plots show qualitatively).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn separability_ratio(features: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(features.rank(), 2);
    let (n, d) = (features.dims()[0], features.dims()[1]);
    assert_eq!(labels.len(), n);
    let num_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    if num_classes < 2 {
        return 0.0;
    }
    let fs = features.as_slice();
    // class centroids
    let mut centroids = vec![0.0f32; num_classes * d];
    let mut counts = vec![0usize; num_classes];
    for (i, &l) in labels.iter().enumerate() {
        counts[l] += 1;
        for k in 0..d {
            centroids[l * d + k] += fs[i * d + k];
        }
    }
    for (c, &cnt) in counts.iter().enumerate() {
        if cnt > 0 {
            for k in 0..d {
                centroids[c * d + k] /= cnt as f32;
            }
        }
    }
    // within-class scatter
    let mut within = 0.0f32;
    for (i, &l) in labels.iter().enumerate() {
        let mut acc = 0.0f32;
        for k in 0..d {
            let diff = fs[i * d + k] - centroids[l * d + k];
            acc += diff * diff;
        }
        within += acc.sqrt();
    }
    within /= n as f32;
    // between-class centroid distances
    let mut between = 0.0f32;
    let mut pairs = 0usize;
    for a in 0..num_classes {
        for b in (a + 1)..num_classes {
            if counts[a] == 0 || counts[b] == 0 {
                continue;
            }
            let mut acc = 0.0f32;
            for k in 0..d {
                let diff = centroids[a * d + k] - centroids[b * d + k];
                // cq-allow(no-naive-hot-loop): pairwise centroid distances over num_classes points; evaluation-time only
                acc += diff * diff;
            }
            between += acc.sqrt();
            pairs += 1;
        }
    }
    between /= pairs.max(1) as f32;
    between / within.max(1e-9)
}

/// Row-normalised confusion matrix `[true, predicted]` from logits, for
/// inspecting which classes a probe confuses.
///
/// # Panics
///
/// Panics on inconsistent shapes.
pub fn confusion_matrix(logits: &Tensor, labels: &[usize], num_classes: usize) -> Tensor {
    assert_eq!(logits.rank(), 2, "confusion_matrix expects [N, K] logits");
    let (n, k) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n);
    assert!(k >= num_classes, "logit width below class count");
    let mut counts = vec![0.0f32; num_classes * num_classes];
    for (i, &lab) in labels.iter().enumerate() {
        assert!(lab < num_classes, "label {lab} out of range");
        let row = &logits.as_slice()[i * k..(i + 1) * k];
        let pred = row
            .iter()
            .take(num_classes)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(j, _)| j)
            .unwrap_or(0);
        counts[lab * num_classes + pred] += 1.0;
    }
    // row-normalise
    for r in 0..num_classes {
        let sum: f32 = counts[r * num_classes..(r + 1) * num_classes].iter().sum();
        if sum > 0.0 {
            for v in &mut counts[r * num_classes..(r + 1) * num_classes] {
                *v /= sum;
            }
        }
    }
    // cq-check: allow — buffer length matches dims by construction
    Tensor::from_vec(counts, &[num_classes, num_classes]).expect("square matrix")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Tensor, Vec<usize>) {
        // class 0 around (0,0), class 1 around (10,10)
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let jitter = (i as f32) * 0.05;
            data.extend_from_slice(&[jitter, -jitter]);
            labels.push(0);
            data.extend_from_slice(&[10.0 + jitter, 10.0 - jitter]);
            labels.push(1);
        }
        (Tensor::from_vec(data, &[20, 2]).unwrap(), labels)
    }

    #[test]
    fn knn_perfect_on_separated_blobs() {
        let (f, l) = two_blobs();
        assert_eq!(knn_accuracy(&f, &l, 3), 100.0);
    }

    #[test]
    fn knn_chance_on_random_labels() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let f = Tensor::randn(&[100, 4], 0.0, 1.0, &mut rng);
        let l: Vec<usize> = (0..100).map(|_| rng.gen_range(0..4)).collect();
        let acc = knn_accuracy(&f, &l, 5);
        assert!(acc < 50.0, "random labels should be near 25%: {acc}");
    }

    #[test]
    fn separability_higher_for_tighter_clusters() {
        let (f, l) = two_blobs();
        let tight = separability_ratio(&f, &l);
        // inflate within-class scatter 10x
        let spread = f.map(|v| v * 1.0);
        let mut spread = spread.into_vec();
        for (i, v) in spread.iter_mut().enumerate() {
            // move points away from their centroid by scaling jitter
            if i % 2 == 0 {
                *v += (i as f32 % 7.0) * 0.5;
            }
        }
        let spread = Tensor::from_vec(spread, &[20, 2]).unwrap();
        let loose = separability_ratio(&spread, &l);
        assert!(tight > loose, "{tight} !> {loose}");
    }

    #[test]
    fn degenerate_inputs() {
        let f = Tensor::zeros(&[3, 2]);
        assert_eq!(separability_ratio(&f, &[0, 0, 0]), 0.0);
        assert_eq!(knn_accuracy(&Tensor::zeros(&[1, 2]), &[0], 1), 0.0);
    }

    #[test]
    fn confusion_matrix_diagonal_for_perfect_logits() {
        // logits put all mass on the true class
        let logits = Tensor::from_vec(
            vec![
                5.0, 0.0, 0.0, /* row 1 */ 0.0, 5.0, 0.0, /* row 2 */ 0.0, 0.0, 5.0,
            ],
            &[3, 3],
        )
        .unwrap();
        let cm = confusion_matrix(&logits, &[0, 1, 2], 3);
        for r in 0..3 {
            for c in 0..3 {
                let expected = if r == c { 1.0 } else { 0.0 };
                assert_eq!(cm.at(&[r, c]), expected);
            }
        }
    }

    #[test]
    fn confusion_matrix_rows_sum_to_one_or_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0], &[2, 2]).unwrap();
        let cm = confusion_matrix(&logits, &[0, 0], 2);
        let row0: f32 = (0..2).map(|c| cm.at(&[0, c])).sum();
        let row1: f32 = (0..2).map(|c| cm.at(&[1, c])).sum();
        assert!((row0 - 1.0).abs() < 1e-6);
        assert_eq!(row1, 0.0); // class 1 never appears
    }
}
