//! # cq-nn
//!
//! Neural-network substrate for the Contrastive Quant reproduction:
//! parameter storage, trace-based layers with analytic backward passes,
//! losses and optimizers.
//!
//! ## Why traces instead of a tape
//!
//! Contrastive Quant evaluates the *same* parameters θ under several
//! quantization configurations per training step — `F_{q1}(x, θ_{q1})` and
//! `F_{q2}(x, θ_{q2})` (Eq. 4 of the paper) — then couples the resulting
//! features in one loss. Every [`Layer::forward`] therefore returns an
//! independent [`Cache`] ("trace"); the trainer runs all forwards first,
//! computes the joint loss, and backpropagates each branch, accumulating
//! into one [`GradSet`].
//!
//! ## Quantization policy
//!
//! The [`ForwardCtx`] carries a [`cq_quant::QuantConfig`]. Weight-bearing
//! layers ([`Conv2d`], [`DepthwiseConv2d`], [`Linear`]) fake-quantize their
//! weights before use; activation layers ([`Relu`], [`Relu6`]) fake-quantize
//! their outputs. BatchNorm runs in full precision (standard QAT practice —
//! it is folded at deployment). Backward uses the straight-through
//! estimator: quantization is treated as identity, but the data gradients
//! flow through the *quantized* weights, which is exactly what the chain
//! rule prescribes for `y = x · Q(w)`.
//!
//! # Example
//!
//! ```
//! use cq_nn::{Linear, Layer, ParamSet, ForwardCtx};
//! use cq_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut ps = ParamSet::new();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut fc = Linear::new(&mut ps, "fc", 4, 2, true, &mut rng);
//! let x = Tensor::ones(&[3, 4]);
//! let (y, _cache) = fc.forward(&ps, &x, &ForwardCtx::eval())?;
//! assert_eq!(y.dims(), &[3, 2]);
//! # Ok::<(), cq_nn::NnError>(())
//! ```

#![deny(missing_docs)]

mod act;
mod conv;
mod ctx;
mod error;
pub mod gradcheck;
pub mod graph;
mod layer;
mod linear;
mod loss;
mod norm;
mod optim;
mod param;
mod perturb;
mod pool;
pub mod spec;

pub use act::{Relu, Relu6};
pub use conv::{Conv2d, DepthwiseConv2d};
pub use ctx::{Cache, ForwardCtx, Mode, WeightNoise};
pub use error::NnError;
pub use layer::{copy_state, Layer, Sequential};
pub use linear::Linear;
pub use loss::{accuracy, mse_loss, softmax_cross_entropy, LossOutput};
pub use norm::{BatchNorm1d, BatchNorm2d};
pub use optim::{
    clip_grad_norm, global_grad_norm, CosineSchedule, Lars, LarsConfig, Sgd, SgdConfig,
};
pub use param::{GradSet, ParamId, ParamSet};
pub use pool::{AvgPool2dLayer, GlobalAvgPool, MaxPool2dLayer};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NnError>;
