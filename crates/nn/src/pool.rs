//! Layer wrappers around the pooling kernels of `cq-tensor`.

use cq_tensor::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, max_pool2d,
    max_pool2d_backward, Conv2dSpec, Tensor,
};

use crate::{Cache, ForwardCtx, GradSet, Layer, ParamSet, Result};

/// Max-pooling layer over NCHW inputs.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2dLayer {
    spec: Conv2dSpec,
}

/// Forward trace of [`MaxPool2dLayer`].
struct MaxPoolCache {
    argmax: Vec<usize>,
    input_shape: Vec<usize>,
}

impl MaxPool2dLayer {
    /// Creates a max-pool with the given geometry.
    pub fn new(spec: Conv2dSpec) -> Self {
        MaxPool2dLayer { spec }
    }
}

impl Layer for MaxPool2dLayer {
    fn layer_kind(&self) -> &'static str {
        "MaxPool2d"
    }

    fn forward(
        &mut self,
        _ps: &ParamSet,
        x: &Tensor,
        _ctx: &ForwardCtx,
    ) -> Result<(Tensor, Cache)> {
        let (y, argmax) = max_pool2d(x, &self.spec)?;
        Ok((
            y,
            Cache::new(MaxPoolCache {
                argmax,
                input_shape: x.dims().to_vec(),
            }),
        ))
    }

    fn backward(
        &self,
        _ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        _gs: &mut GradSet,
    ) -> Result<Tensor> {
        let c = cache.downcast::<MaxPoolCache>("MaxPool2dLayer")?;
        Ok(max_pool2d_backward(dy, &c.argmax, &c.input_shape)?)
    }
}

/// Average-pooling layer over NCHW inputs.
#[derive(Debug, Clone, Copy)]
pub struct AvgPool2dLayer {
    spec: Conv2dSpec,
}

/// Forward trace of [`AvgPool2dLayer`].
struct AvgPoolCache {
    input_shape: Vec<usize>,
}

impl AvgPool2dLayer {
    /// Creates an average pool with the given geometry.
    pub fn new(spec: Conv2dSpec) -> Self {
        AvgPool2dLayer { spec }
    }
}

impl Layer for AvgPool2dLayer {
    fn layer_kind(&self) -> &'static str {
        "AvgPool2d"
    }

    fn forward(
        &mut self,
        _ps: &ParamSet,
        x: &Tensor,
        _ctx: &ForwardCtx,
    ) -> Result<(Tensor, Cache)> {
        let y = avg_pool2d(x, &self.spec)?;
        Ok((
            y,
            Cache::new(AvgPoolCache {
                input_shape: x.dims().to_vec(),
            }),
        ))
    }

    fn backward(
        &self,
        _ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        _gs: &mut GradSet,
    ) -> Result<Tensor> {
        let c = cache.downcast::<AvgPoolCache>("AvgPool2dLayer")?;
        Ok(avg_pool2d_backward(dy, &c.input_shape, &self.spec)?)
    }
}

/// Global average pooling `[N, C, H, W] -> [N, C]` — the standard
/// backbone-to-features transition.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalAvgPool;

impl GlobalAvgPool {
    /// Creates the layer.
    pub fn new() -> Self {
        GlobalAvgPool
    }
}

/// Forward trace of [`GlobalAvgPool`].
struct GapCache {
    input_shape: Vec<usize>,
}

impl Layer for GlobalAvgPool {
    fn layer_kind(&self) -> &'static str {
        "GlobalAvgPool"
    }

    fn forward(
        &mut self,
        _ps: &ParamSet,
        x: &Tensor,
        _ctx: &ForwardCtx,
    ) -> Result<(Tensor, Cache)> {
        let y = global_avg_pool(x)?;
        Ok((
            y,
            Cache::new(GapCache {
                input_shape: x.dims().to_vec(),
            }),
        ))
    }

    fn backward(
        &self,
        _ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        _gs: &mut GradSet,
    ) -> Result<Tensor> {
        let c = cache.downcast::<GapCache>("GlobalAvgPool")?;
        Ok(global_avg_pool_backward(dy, &c.input_shape)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_layer_round_trip() {
        let mut l = MaxPool2dLayer::new(Conv2dSpec::new(2, 2, 0));
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let ps = ParamSet::new();
        let (y, c) = l.forward(&ps, &x, &ForwardCtx::train()).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        let mut gs = ps.zero_grads();
        let dx = l
            .backward(&ps, &c, &Tensor::ones(&[1, 1, 2, 2]), &mut gs)
            .unwrap();
        assert_eq!(dx.sum(), 4.0);
    }

    #[test]
    fn avg_pool_layer_gradcheck() {
        crate::gradcheck::check_layer(
            AvgPool2dLayer::new(Conv2dSpec::new(2, 2, 0)),
            ParamSet::new(),
            &[2, 2, 4, 4],
            &ForwardCtx::train(),
            1e-2,
        );
    }

    #[test]
    fn gap_layer_gradcheck() {
        crate::gradcheck::check_layer(
            GlobalAvgPool::new(),
            ParamSet::new(),
            &[3, 4, 3, 3],
            &ForwardCtx::train(),
            1e-2,
        );
    }
}
