//! Forward context (mode + quantization config) and type-erased caches.

use std::any::Any;

use cq_quant::QuantConfig;

use crate::{NnError, Result};

/// Whether a forward pass is part of training or evaluation.
///
/// Training mode uses batch statistics in BatchNorm (and updates the
/// running estimates); evaluation mode uses the running estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Training: batch statistics, running-stat updates.
    Train,
    /// Evaluation: frozen running statistics.
    #[default]
    Eval,
}

/// Additive Gaussian weight perturbation — the alternative model-side
/// augmentation the paper names as future work (§4.2 "explore other kinds
/// of perturbations on weights/activations").
///
/// The noise drawn for a weight tensor is `N(0, (std · rms(w))²)`, seeded
/// by `seed ^ hash(param id)` so each branch of a training step sees a
/// different but *deterministic* perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightNoise {
    /// Relative noise strength (multiplies the weight tensor's RMS).
    pub std: f32,
    /// Branch seed.
    pub seed: u64,
}

/// Per-forward-pass context: the mode and the quantization configuration
/// under which the encoder is being evaluated.
///
/// Contrastive Quant constructs one `ForwardCtx` per branch per step, e.g.
/// `ForwardCtx::train().with_quant(QuantConfig::uniform(q1))`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ForwardCtx {
    /// Train vs eval behaviour.
    pub mode: Mode,
    /// Quantization applied to weights/activations in this pass.
    pub quant: QuantConfig,
    /// Optional Gaussian weight perturbation (noise-augmentation
    /// extension; `None` in all of the paper's own pipelines).
    pub weight_noise: Option<WeightNoise>,
    /// Numerics sanitizer: when set, containers check every layer's output
    /// for NaN/Inf and fail with a layer-attributed error (see
    /// [`cq_tensor::sanitize`]). Denormals are recorded as warnings.
    pub sanitize: bool,
}

impl ForwardCtx {
    /// Training context at full precision.
    pub fn train() -> Self {
        ForwardCtx {
            mode: Mode::Train,
            quant: QuantConfig::fp(),
            weight_noise: None,
            sanitize: false,
        }
    }

    /// Evaluation context at full precision.
    pub fn eval() -> Self {
        ForwardCtx {
            mode: Mode::Eval,
            quant: QuantConfig::fp(),
            weight_noise: None,
            sanitize: false,
        }
    }

    /// Returns a copy with the given quantization config.
    pub fn with_quant(mut self, quant: QuantConfig) -> Self {
        self.quant = quant;
        self
    }

    /// Returns a copy with Gaussian weight noise enabled.
    pub fn with_weight_noise(mut self, std: f32, seed: u64) -> Self {
        self.weight_noise = Some(WeightNoise { std, seed });
        self
    }

    /// Returns a copy with the numerics sanitizer enabled: every layer
    /// output inside a [`crate::Sequential`] is checked for NaN/Inf, and a
    /// violation fails the forward pass with an error naming the producing
    /// layer.
    pub fn with_sanitize(mut self) -> Self {
        self.sanitize = true;
        self
    }

    /// Whether this pass trains (batch statistics etc.).
    pub fn is_train(&self) -> bool {
        self.mode == Mode::Train
    }

    /// Whether this pass perturbs weights in any way (quantization or
    /// noise).
    pub fn perturbs_weights(&self) -> bool {
        self.quant.weight.is_quantized() || self.weight_noise.is_some()
    }
}

/// Type-erased per-forward state a layer needs for its backward pass.
///
/// Each [`crate::Layer::forward`] call returns a fresh `Cache`; holding
/// several caches for the same layer is what enables the multi-branch
/// (multi-quantization) training steps of Contrastive Quant.
#[derive(Debug)]
pub struct Cache(Box<dyn Any + Send>);

impl Cache {
    /// Wraps a layer-specific cache value.
    pub fn new<T: Any + Send>(v: T) -> Self {
        Cache(Box::new(v))
    }

    /// An empty cache for stateless layers.
    pub fn none() -> Self {
        Cache(Box::new(()))
    }

    /// Downcasts to the concrete cache type of the owning layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CacheMismatch`] if the cache was produced by a
    /// different layer type.
    pub fn downcast<T: Any>(&self, layer: &str) -> Result<&T> {
        self.0
            .downcast_ref::<T>()
            .ok_or_else(|| NnError::CacheMismatch {
                layer: layer.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_quant::Precision;

    #[test]
    fn ctx_builders() {
        let t = ForwardCtx::train();
        assert!(t.is_train());
        assert!(!t.quant.is_quantized());
        let q = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(4)));
        assert!(!q.is_train());
        assert!(q.quant.is_quantized());
        assert!(!q.sanitize);
        assert!(ForwardCtx::eval().with_sanitize().sanitize);
    }

    #[test]
    fn cache_downcast_success_and_failure() {
        let c = Cache::new(42u32);
        assert_eq!(*c.downcast::<u32>("x").unwrap(), 42);
        assert!(c.downcast::<f64>("x").is_err());
        let n = Cache::none();
        assert!(n.downcast::<()>("x").is_ok());
    }
}
