//! Error type for the neural-network substrate.

use std::fmt;

use cq_tensor::TensorError;

/// Error returned by layer, loss and optimizer operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A layer received an input of unexpected shape.
    BadInput {
        /// The layer reporting the problem.
        layer: String,
        /// Human-readable description of the mismatch.
        expected: String,
        /// The shape actually received.
        got: Vec<usize>,
    },
    /// A [`crate::Cache`] was passed to a layer that did not create it.
    CacheMismatch {
        /// The layer reporting the problem.
        layer: String,
    },
    /// Parameter/gradient bookkeeping failed (e.g. id from another set).
    Param(String),
    /// A numeric invariant was violated (NaN/Inf detected where the caller
    /// requested checking).
    NonFinite {
        /// Where the non-finite value surfaced.
        context: String,
    },
    /// Checkpoint (de)serialisation failed.
    Io(String),
    /// The training-health monitor requested an abort (a Critical verdict
    /// under `CQ_OBS_HEALTH=abort`); the message names the detector.
    Health(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput {
                layer,
                expected,
                got,
            } => {
                write!(f, "layer `{layer}` expected {expected}, got shape {got:?}")
            }
            NnError::CacheMismatch { layer } => {
                write!(
                    f,
                    "cache passed to layer `{layer}` was created by a different layer"
                )
            }
            NnError::Param(msg) => write!(f, "parameter error: {msg}"),
            NnError::NonFinite { context } => write!(f, "non-finite value in {context}"),
            NnError::Io(msg) => write!(f, "checkpoint i/o error: {msg}"),
            NnError::Health(msg) => write!(f, "training aborted by health monitor: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: NnError = TensorError::Io("x".into()).into();
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());
        let b = NnError::BadInput {
            layer: "conv1".into(),
            expected: "NCHW".into(),
            got: vec![2],
        };
        assert!(b.to_string().contains("conv1"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<NnError>();
    }
}
