//! Convolution layers: dense [`Conv2d`] (im2col + matmul) and
//! [`DepthwiseConv2d`] (direct loops, used by MobileNetV2).
//!
//! Both layers parallelise over batch samples with per-band weight-gradient
//! accumulators, so gradients are deterministic (the band grid depends only
//! on the batch size — never on the thread count — and partials are reduced
//! in band order) while still using every core via the persistent pool.

use cq_tensor::gemm::{gemm_nn, gemm_nt_acc, gemm_tn};
use cq_tensor::par::{parallel_for_chunks, parallel_map_chunks, ChunkGrid};
use cq_tensor::{col2im, depthwise_conv2d, depthwise_conv2d_backward, im2col, Conv2dSpec, Tensor};
use rand::rngs::StdRng;

use crate::{Cache, ForwardCtx, GradSet, Layer, NnError, ParamId, ParamSet, Result};

/// Raw pointer wrapper for disjoint parallel writes.
struct SendPtr(*mut f32);
// SAFETY: only used with disjoint per-sample chunks.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor so closures capture the `Sync` wrapper, not the pointer.
    fn get(&self) -> *mut f32 {
        self.0
    }
}

/// Fixed cap on batch bands. A constant (not `num_threads()`) so the band
/// grid — and with it the weight-gradient partial count and reduction
/// order — is identical at every thread count. Also bounds the per-band
/// scratch (im2col buffers) and partial-accumulator memory.
const MAX_BANDS: usize = 8;

/// Band grid over `n` batch samples.
fn band_grid(n: usize) -> ChunkGrid {
    ChunkGrid::with_max_chunks(n, 1, MAX_BANDS)
}

/// Dense 2-D convolution over NCHW batches.
///
/// The weight is stored as `[out_channels, in_channels * kh * kw]` so the
/// per-sample forward is a single matmul against the im2col matrix. Under
/// a quantized [`ForwardCtx`] the weight is fake-quantized before use
/// (STE backward).
#[derive(Debug)]
pub struct Conv2d {
    weight: ParamId,
    bias: Option<ParamId>,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
}

/// Forward trace of [`Conv2d`].
struct ConvCache {
    input: Tensor,
    used_weight: Option<Tensor>,
    in_hw: (usize, usize),
    out_hw: (usize, usize),
}

impl Conv2d {
    /// Creates a convolution, registering parameters in `ps`.
    /// Kaiming-normal weight init with fan-in `c_in * kh * kw`.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        spec: Conv2dSpec,
        bias: bool,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * spec.kernel.0 * spec.kernel.1;
        let w = Tensor::kaiming_normal(&[out_channels, fan_in], fan_in, rng);
        let weight = ps.add(format!("{name}.weight"), w);
        let bias = bias.then(|| ps.add(format!("{name}.bias"), Tensor::zeros(&[out_channels])));
        Conv2d {
            weight,
            bias,
            spec,
            in_channels,
            out_channels,
        }
    }

    /// The layer's geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The weight parameter handle.
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }

    fn check_input(&self, x: &Tensor) -> Result<(usize, usize, usize)> {
        if x.rank() != 4 || x.dims()[1] != self.in_channels {
            return Err(NnError::BadInput {
                layer: format!("Conv2d({}->{})", self.in_channels, self.out_channels),
                expected: format!("[N, {}, H, W]", self.in_channels),
                got: x.dims().to_vec(),
            });
        }
        Ok((x.dims()[0], x.dims()[2], x.dims()[3]))
    }
}

impl Layer for Conv2d {
    fn layer_kind(&self) -> &'static str {
        "Conv2d"
    }

    fn forward(&mut self, ps: &ParamSet, x: &Tensor, ctx: &ForwardCtx) -> Result<(Tensor, Cache)> {
        let (n, h, w) = self.check_input(x)?;
        let (oh, ow) = self.spec.out_hw(h, w)?;
        let (c, o) = (self.in_channels, self.out_channels);
        let ckk = self.spec.col_rows(c);
        let raw_w = ps.get(self.weight);
        let used = crate::perturb::perturbed_weight(raw_w, self.weight, ctx);
        let wslice = used.as_ref().unwrap_or(raw_w).as_slice();
        let bias = self.bias.map(|b| ps.get(b).as_slice().to_vec());

        let mut out = vec![0.0f32; n * o * oh * ow];
        let xs = x.as_slice();
        let spec = self.spec;
        {
            let out_ptr = SendPtr(out.as_mut_ptr());
            let bias = &bias;
            parallel_for_chunks(band_grid(n), |_, b0, b1| {
                let mut cols = vec![0.0f32; ckk * oh * ow];
                for i in b0..b1 {
                    im2col(
                        &xs[i * c * h * w..(i + 1) * c * h * w],
                        c,
                        h,
                        w,
                        &spec,
                        &mut cols,
                    );
                    // SAFETY: sample chunks are disjoint across bands.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(
                            out_ptr.get().add(i * o * oh * ow),
                            o * oh * ow,
                        )
                    };
                    // Serial blocked kernel: the batch bands above are the
                    // parallel dimension, so no nested dispatch here.
                    gemm_nn(wslice, o, ckk, &cols, oh * ow, dst);
                    if let Some(bv) = bias {
                        for (co, &b) in bv.iter().enumerate() {
                            for v in &mut dst[co * oh * ow..(co + 1) * oh * ow] {
                                *v += b;
                            }
                        }
                    }
                }
            });
        }
        let y = Tensor::from_vec(out, &[n, o, oh, ow])?;
        Ok((
            y,
            Cache::new(ConvCache {
                input: x.clone(),
                used_weight: used,
                in_hw: (h, w),
                out_hw: (oh, ow),
            }),
        ))
    }

    fn backward(
        &self,
        ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        gs: &mut GradSet,
    ) -> Result<Tensor> {
        let cch = cache.downcast::<ConvCache>("Conv2d")?;
        let (h, w) = cch.in_hw;
        let (oh, ow) = cch.out_hw;
        let (c, o) = (self.in_channels, self.out_channels);
        let n = cch.input.dims()[0];
        if dy.dims() != [n, o, oh, ow] {
            return Err(NnError::BadInput {
                layer: "Conv2d.backward".into(),
                expected: format!("[{n}, {o}, {oh}, {ow}]"),
                got: dy.dims().to_vec(),
            });
        }
        let ckk = self.spec.col_rows(c);
        let wslice = cch
            .used_weight
            .as_ref()
            .unwrap_or_else(|| ps.get(self.weight))
            .as_slice();
        let xs = cch.input.as_slice();
        let dys = dy.as_slice();
        let spec = self.spec;

        let mut dx = vec![0.0f32; n * c * h * w];
        let dw_partials = {
            let dx_ptr = SendPtr(dx.as_mut_ptr());
            parallel_map_chunks(
                band_grid(n),
                || vec![0.0f32; o * ckk],
                |_, b0, b1, dw_part| {
                    let mut cols = vec![0.0f32; ckk * oh * ow];
                    let mut dcols = vec![0.0f32; ckk * oh * ow];
                    for i in b0..b1 {
                        let x_n = &xs[i * c * h * w..(i + 1) * c * h * w];
                        let dy_n = &dys[i * o * oh * ow..(i + 1) * o * oh * ow];
                        im2col(x_n, c, h, w, &spec, &mut cols);
                        // dW += dy_n @ colsᵀ
                        gemm_nt_acc(dy_n, o, oh * ow, &cols, ckk, dw_part);
                        // dcols = Wᵀ @ dy_n
                        gemm_tn(wslice, o, ckk, dy_n, oh * ow, &mut dcols);
                        // SAFETY: disjoint per-sample chunks.
                        let dx_n = unsafe {
                            std::slice::from_raw_parts_mut(
                                dx_ptr.get().add(i * c * h * w),
                                c * h * w,
                            )
                        };
                        col2im(&dcols, c, h, w, &spec, dx_n);
                    }
                },
            )
        };
        // In-band-order reduction of the partials keeps gradients
        // deterministic at any thread count.
        let mut dw = Tensor::zeros(&[o, ckk]);
        for part in &dw_partials {
            for (d, &p) in dw.as_mut_slice().iter_mut().zip(part) {
                *d += p;
            }
        }
        gs.accumulate(self.weight, &dw)?;
        if let Some(b) = self.bias {
            let mut db = vec![0.0f32; o];
            for i in 0..n {
                for (co, dbv) in db.iter_mut().enumerate() {
                    let base = (i * o + co) * oh * ow;
                    // cq-allow(det-float-accum): contiguous slice sum in index order
                    *dbv += dys[base..base + oh * ow].iter().sum::<f32>();
                }
            }
            gs.accumulate(b, &Tensor::from_vec(db, &[o])?)?;
        }
        Ok(Tensor::from_vec(dx, &[n, c, h, w])?)
    }
}

/// Depthwise 2-D convolution (groups = channels), weight `[c, kh, kw]`.
#[derive(Debug)]
pub struct DepthwiseConv2d {
    weight: ParamId,
    spec: Conv2dSpec,
    channels: usize,
}

/// Forward trace of [`DepthwiseConv2d`].
struct DwCache {
    input: Tensor,
    used_weight: Option<Tensor>,
    in_hw: (usize, usize),
    out_hw: (usize, usize),
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution (no bias; always followed by BN in
    /// MobileNetV2).
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        channels: usize,
        spec: Conv2dSpec,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = spec.kernel.0 * spec.kernel.1;
        let w = Tensor::kaiming_normal(&[channels, spec.kernel.0, spec.kernel.1], fan_in, rng);
        let weight = ps.add(format!("{name}.weight"), w);
        DepthwiseConv2d {
            weight,
            spec,
            channels,
        }
    }

    /// The weight parameter handle.
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }
}

impl Layer for DepthwiseConv2d {
    fn layer_kind(&self) -> &'static str {
        "DepthwiseConv2d"
    }

    fn forward(&mut self, ps: &ParamSet, x: &Tensor, ctx: &ForwardCtx) -> Result<(Tensor, Cache)> {
        if x.rank() != 4 || x.dims()[1] != self.channels {
            return Err(NnError::BadInput {
                layer: format!("DepthwiseConv2d({})", self.channels),
                expected: format!("[N, {}, H, W]", self.channels),
                got: x.dims().to_vec(),
            });
        }
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let (oh, ow) = self.spec.out_hw(h, w)?;
        let raw_w = ps.get(self.weight);
        let used = crate::perturb::perturbed_weight(raw_w, self.weight, ctx);
        let wslice = used.as_ref().unwrap_or(raw_w).as_slice();
        let xs = x.as_slice();
        let spec = self.spec;
        let mut out = vec![0.0f32; n * c * oh * ow];
        {
            let out_ptr = SendPtr(out.as_mut_ptr());
            parallel_for_chunks(band_grid(n), |_, b0, b1| {
                for i in b0..b1 {
                    // SAFETY: disjoint per-sample chunks.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(
                            out_ptr.get().add(i * c * oh * ow),
                            c * oh * ow,
                        )
                    };
                    depthwise_conv2d(
                        &xs[i * c * h * w..(i + 1) * c * h * w],
                        wslice,
                        c,
                        h,
                        w,
                        &spec,
                        dst,
                    );
                }
            });
        }
        let y = Tensor::from_vec(out, &[n, c, oh, ow])?;
        Ok((
            y,
            Cache::new(DwCache {
                input: x.clone(),
                used_weight: used,
                in_hw: (h, w),
                out_hw: (oh, ow),
            }),
        ))
    }

    fn backward(
        &self,
        ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        gs: &mut GradSet,
    ) -> Result<Tensor> {
        let cch = cache.downcast::<DwCache>("DepthwiseConv2d")?;
        let (h, w) = cch.in_hw;
        let (oh, ow) = cch.out_hw;
        let c = self.channels;
        let n = cch.input.dims()[0];
        if dy.dims() != [n, c, oh, ow] {
            return Err(NnError::BadInput {
                layer: "DepthwiseConv2d.backward".into(),
                expected: format!("[{n}, {c}, {oh}, {ow}]"),
                got: dy.dims().to_vec(),
            });
        }
        let wslice = cch
            .used_weight
            .as_ref()
            .unwrap_or_else(|| ps.get(self.weight))
            .as_slice();
        let xs = cch.input.as_slice();
        let dys = dy.as_slice();
        let spec = self.spec;
        let (kh, kw) = spec.kernel;

        let mut dx = vec![0.0f32; n * c * h * w];
        let dw_partials = {
            let dx_ptr = SendPtr(dx.as_mut_ptr());
            parallel_map_chunks(
                band_grid(n),
                || vec![0.0f32; c * kh * kw],
                |_, b0, b1, dw_part| {
                    for i in b0..b1 {
                        // SAFETY: disjoint per-sample chunks.
                        let dx_n = unsafe {
                            std::slice::from_raw_parts_mut(
                                dx_ptr.get().add(i * c * h * w),
                                c * h * w,
                            )
                        };
                        depthwise_conv2d_backward(
                            &xs[i * c * h * w..(i + 1) * c * h * w],
                            wslice,
                            &dys[i * c * oh * ow..(i + 1) * c * oh * ow],
                            c,
                            h,
                            w,
                            &spec,
                            dx_n,
                            dw_part,
                        );
                    }
                },
            )
        };
        let mut dw = Tensor::zeros(&[c, kh, kw]);
        for part in &dw_partials {
            for (d, &p) in dw.as_mut_slice().iter_mut().zip(part) {
                *d += p;
            }
        }
        gs.accumulate(self.weight, &dw)?;
        Ok(Tensor::from_vec(dx, &[n, c, h, w])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_quant::{Precision, QuantConfig};
    use rand::SeedableRng;

    #[test]
    fn conv_forward_shape() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(&mut ps, "c", 3, 8, Conv2dSpec::new(3, 2, 1), true, &mut rng);
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let (y, _) = conv.forward(&ps, &x, &ForwardCtx::train()).unwrap();
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn conv_rejects_wrong_channels() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(
            &mut ps,
            "c",
            3,
            8,
            Conv2dSpec::new(3, 1, 1),
            false,
            &mut rng,
        );
        assert!(conv
            .forward(&ps, &Tensor::ones(&[2, 4, 8, 8]), &ForwardCtx::train())
            .is_err());
    }

    #[test]
    fn conv_gradcheck() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(&mut ps, "c", 2, 3, Conv2dSpec::new(3, 1, 1), true, &mut rng);
        crate::gradcheck::check_layer(conv, ps, &[2, 2, 5, 5], &ForwardCtx::train(), 2e-2);
    }

    #[test]
    fn conv_gradcheck_strided() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = Conv2d::new(
            &mut ps,
            "c",
            2,
            4,
            Conv2dSpec::new(3, 2, 1),
            false,
            &mut rng,
        );
        crate::gradcheck::check_layer(conv, ps, &[2, 2, 6, 6], &ForwardCtx::train(), 2e-2);
    }

    #[test]
    fn conv_1x1_gradcheck() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::new(
            &mut ps,
            "c",
            3,
            2,
            Conv2dSpec::new(1, 1, 0),
            false,
            &mut rng,
        );
        crate::gradcheck::check_layer(conv, ps, &[2, 3, 4, 4], &ForwardCtx::train(), 2e-2);
    }

    #[test]
    fn conv_quantized_output_differs_from_fp() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(
            &mut ps,
            "c",
            3,
            4,
            Conv2dSpec::new(3, 1, 1),
            false,
            &mut rng,
        );
        let x = Tensor::randn(&[1, 3, 6, 6], 0.0, 1.0, &mut rng);
        let (yf, _) = conv.forward(&ps, &x, &ForwardCtx::eval()).unwrap();
        let ctx4 = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(4)));
        let (y4, _) = conv.forward(&ps, &x, &ctx4).unwrap();
        let ctx16 = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(16)));
        let (y16, _) = conv.forward(&ps, &x, &ctx16).unwrap();
        let e4 = y4.sub(&yf).unwrap().norm();
        let e16 = y16.sub(&yf).unwrap().norm();
        assert!(
            e4 > e16,
            "4-bit noise {e4} should exceed 16-bit noise {e16}"
        );
        assert!(e4 > 1e-4);
    }

    #[test]
    fn depthwise_forward_shape_and_gradcheck() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut dw = DepthwiseConv2d::new(&mut ps, "dw", 3, Conv2dSpec::new(3, 1, 1), &mut rng);
        let x = Tensor::ones(&[2, 3, 5, 5]);
        let (y, _) = dw.forward(&ps, &x, &ForwardCtx::train()).unwrap();
        assert_eq!(y.dims(), &[2, 3, 5, 5]);

        let mut ps2 = ParamSet::new();
        let dw2 = DepthwiseConv2d::new(&mut ps2, "dw", 2, Conv2dSpec::new(3, 2, 1), &mut rng);
        crate::gradcheck::check_layer(dw2, ps2, &[2, 2, 6, 6], &ForwardCtx::train(), 2e-2);
    }

    #[test]
    fn conv_batch_parallel_matches_batch_serial() {
        // Results must not depend on how many samples run per band.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new(&mut ps, "c", 3, 4, Conv2dSpec::new(3, 1, 1), true, &mut rng);
        let xb = Tensor::randn(&[4, 3, 6, 6], 0.0, 1.0, &mut rng);
        let (yb, _) = conv.forward(&ps, &xb, &ForwardCtx::train()).unwrap();
        for i in 0..4 {
            let xi = Tensor::from_vec(
                xb.as_slice()[i * 3 * 36..(i + 1) * 3 * 36].to_vec(),
                &[1, 3, 6, 6],
            )
            .unwrap();
            let (yi, _) = conv.forward(&ps, &xi, &ForwardCtx::train()).unwrap();
            let chunk = &yb.as_slice()[i * 4 * 36..(i + 1) * 4 * 36];
            for (a, b) in chunk.iter().zip(yi.as_slice()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }
}
