//! Lazy op-graph IR with elementwise+quantize fusion.
//!
//! Two halves share one contract:
//!
//! * **Runtime** ([`Recorder`] plus the fused executor): module forwards
//!   record shape-preserving elementwise work (BatchNorm normalize/affine,
//!   ReLU/ReLU6, residual adds, activation fake-quant) as groups instead
//!   of executing eagerly. A flush compiles the pending groups into
//!   cache-blocked passes over memory, executed on the deterministic
//!   worker pool. Under [`FusionMode::Fused`] adjacent groups merge into
//!   a single pass per quantization segment; under
//!   [`FusionMode::Unfused`] every group runs as its own full sweep (the
//!   historical eager pass structure).
//! * **Static** ([`Graph`], built by [`Graph::lower`]): the spec
//!   [`Plan`] lowers to explicit nodes (conv/matmul/BN/activation/
//!   quantize/add/reduce/movement) with shapes, strides and bit-width
//!   metadata. Shape and FLOP inference live *here* — `spec` delegates
//!   its per-layer inference to the lowering, making the graph the
//!   single source of truth that `cq-check` validates per config.
//!
//! # Bitwise contract
//!
//! Fused and unfused execution are bit-identical at every thread count:
//!
//! 1. Every fusable op depends only on its own element, and every
//!    intermediate value is stored as an exact `f32` (no extended
//!    precision is carried between ops), so applying op chains per
//!    cache-block is bit-equal to applying them in separate full passes.
//! 2. Parallel passes write disjoint chunks of a grid derived from the
//!    problem size only (never the thread count), so scheduling cannot
//!    reorder any arithmetic.
//! 3. Fake-quant needs a whole-tensor min/max reduction, so it is a pass
//!    boundary: the chain materializes and [`cq_quant::fake_quant_into`]
//!    runs over the full buffer exactly as the eager code did.
//!
//! The `CQ_FUSION` environment variable (`off`/`0`/`false` to disable)
//! selects the process-wide default mode; [`with_fusion_mode`] overrides
//! it on the current thread (used by the equivalence tests and benches).

use std::cell::Cell;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use cq_obs::Counter;
use cq_quant::{fake_quant_into, fake_quant_scanned, Precision, QuantMode, RangeScan};
use cq_tensor::par::{parallel_for_chunks, parallel_map_chunks, ChunkGrid};
use cq_tensor::{Conv2dSpec, Tensor};

use crate::spec::{LayerKind, LayerSpec, Plan, SpecError, SpecErrorKind};
use crate::{Cache, ForwardCtx, Layer, NnError, ParamSet, Result};

/// Result alias for spec-attributed (shape/FLOP inference) failures.
type SpecResult<T> = std::result::Result<T, SpecError>;

/// Chains whose groups merged into fewer passes than group count.
static C_FUSED_CHAINS: Counter = Counter::new("graph.fused_chains");
/// Multi-group chains executed pass-per-group (fusion off).
static C_UNFUSED_FALLBACKS: Counter = Counter::new("graph.unfused_fallbacks");
/// Bytes of memory traffic elided by merging passes (one read + one
/// write of the working buffer per elided pass).
static C_ELIDED_BYTES: Counter = Counter::new(cq_obs::names::FUSION_PASS_ELIDED_BYTES);
/// Wall time spent inside the elementwise-chain executor. Timing-only:
/// exempt from hard gating in `cq-trace diff`, like the pool.* series.
static C_EW_EXEC_NS: Counter = Counter::new("graph.ew_exec_ns");

/// Elements per cache block: 4096 f32 = 16 KiB, so a fused chain's
/// working set (buffer plus at most a tap and a second operand) stays
/// L1/L2-resident between ops. Also the parallel min-chunk, which keeps
/// the chunk grid — and the pool workload counters — a function of the
/// problem size only.
const BLOCK_ELEMS: usize = 4096;

// ---------------------------------------------------------------------------
// Fusion mode selection
// ---------------------------------------------------------------------------

/// How a flushed chain of elementwise groups is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionMode {
    /// Merge adjacent groups into one pass per quantization segment.
    Fused,
    /// One full pass per group — the historical eager pass structure.
    Unfused,
}

thread_local! {
    static MODE_OVERRIDE: Cell<Option<FusionMode>> = const { Cell::new(None) };
}

static ENV_MODE: OnceLock<FusionMode> = OnceLock::new();

/// The fusion mode in effect on this thread: a [`with_fusion_mode`]
/// override if active, otherwise the `CQ_FUSION` environment variable
/// (read once; `off`, `0`, `false` or `unfused` disable fusion), and
/// [`FusionMode::Fused`] by default.
pub fn fusion_mode() -> FusionMode {
    if let Some(m) = MODE_OVERRIDE.with(Cell::get) {
        return m;
    }
    *ENV_MODE.get_or_init(|| match std::env::var("CQ_FUSION").ok().as_deref() {
        Some("off" | "0" | "false" | "unfused") => FusionMode::Unfused,
        _ => FusionMode::Fused,
    })
}

/// Runs `f` with the fusion mode forced to `mode` on the current thread,
/// restoring the previous override afterwards (also on panic).
pub fn with_fusion_mode<R>(mode: FusionMode, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<FusionMode>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(MODE_OVERRIDE.with(|c| c.replace(Some(mode))));
    f()
}

// ---------------------------------------------------------------------------
// Runtime chain: ops, groups, executor
// ---------------------------------------------------------------------------

/// One recorded elementwise operation. All ops are shape-preserving and
/// depend only on their own element (plus broadcast per-channel
/// constants), which is what makes pass merging bit-exact.
pub(crate) enum EwOp {
    /// `v = (v - mean[c]) * inv_std[c]`, writing the normalized value to
    /// the group's `xhat` tap when requested.
    Normalize {
        /// Per-channel mean.
        mean: Vec<f32>,
        /// Per-channel reciprocal standard deviation.
        inv_std: Vec<f32>,
    },
    /// `v = scale[c] * v + shift[c]`.
    Affine {
        /// Per-channel scale (BN gamma).
        scale: Vec<f32>,
        /// Per-channel shift (BN beta).
        shift: Vec<f32>,
    },
    /// `v = max(0, v)`, writing 1.0 to the mask tap where the input was
    /// strictly positive.
    Relu,
    /// `v = clamp(v, 0, 6)`, mask tap 1.0 on the open interval (0, 6).
    Relu6,
    /// `v = v + other[i]` — the residual join. The operand is shared,
    /// not copied: callers that still hold the skip tensor (it is read,
    /// never written) hand over an `Arc` clone instead of a deep copy.
    Add(Arc<Tensor>),
}

/// Tensors captured during execution for a group's backward cache.
pub(crate) struct TapData {
    /// Normalized pre-affine values (BatchNorm's `xhat`).
    pub xhat: Option<Tensor>,
    /// Activation pass-through mask.
    pub mask: Option<Vec<f32>>,
}

type CacheBuild = Box<dyn FnOnce(TapData) -> Cache + Send>;

/// One layer's worth of recorded elementwise work: an op list, optional
/// per-channel geometry, an optional trailing fake-quant (a pass
/// boundary), requested taps, and a deferred cache constructor.
pub(crate) struct EwGroup {
    ops: Vec<EwOp>,
    /// `(channels, inner)` geometry for `Normalize`/`Affine` ops; the
    /// tensor is viewed as `(outer, channels, inner)` row-major.
    geom: Option<(usize, usize)>,
    quant: Option<(Precision, QuantMode)>,
    want_xhat: bool,
    want_mask: bool,
    build: Option<CacheBuild>,
}

impl EwGroup {
    /// A group with the given ops and optional channel geometry.
    pub(crate) fn new(ops: Vec<EwOp>, geom: Option<(usize, usize)>) -> Self {
        EwGroup {
            ops,
            geom,
            quant: None,
            want_xhat: false,
            want_mask: false,
            build: None,
        }
    }

    /// Appends a trailing fake-quant (executed after the ops, over the
    /// materialized buffer).
    pub(crate) fn with_quant(mut self, precision: Precision, mode: QuantMode) -> Self {
        self.quant = Some((precision, mode));
        self
    }

    /// Requests the normalized-value tap (for BatchNorm caches).
    pub(crate) fn with_xhat_tap(mut self) -> Self {
        self.want_xhat = true;
        self
    }

    /// Requests the activation mask tap.
    pub(crate) fn with_mask_tap(mut self) -> Self {
        self.want_mask = true;
        self
    }

    /// Sets the deferred cache constructor, called with the taps once the
    /// chain has executed.
    pub(crate) fn with_cache(
        mut self,
        build: impl FnOnce(TapData) -> Cache + Send + 'static,
    ) -> Self {
        self.build = Some(Box::new(build));
        self
    }
}

/// Raw pointer wrapper for disjoint parallel writes (tap buffers and the
/// shared working buffer).
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// SAFETY: only ever written at chunk-disjoint indices.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// The wrapped pointer, via a method so closures capture the wrapper
    /// (which is `Send + Sync`) rather than the raw field.
    fn get(&self) -> *mut f32 {
        self.0
    }
}

/// A compiled per-pass op: borrows group data, carries raw tap pointers.
enum KOp<'a> {
    Norm {
        mean: &'a [f32],
        inv_std: &'a [f32],
        c: usize,
        inner: usize,
        xhat: Option<SendPtr>,
    },
    Affine {
        scale: &'a [f32],
        shift: &'a [f32],
        c: usize,
        inner: usize,
    },
    Relu {
        mask: Option<SendPtr>,
    },
    Relu6 {
        mask: Option<SendPtr>,
    },
    Add {
        other: &'a [f32],
    },
}

/// Applies `f(ci, lo, hi)` over the per-channel segments of the absolute
/// index range `[start, start + len)` under `(outer, c, inner)` geometry;
/// `lo..hi` are chunk-relative.
fn for_channel_segments(
    start: usize,
    len: usize,
    c: usize,
    inner: usize,
    mut f: impl FnMut(usize, usize, usize),
) {
    let mut pos = 0;
    while pos < len {
        let i = start + pos;
        let ci = (i / inner) % c;
        let seg = (inner - i % inner).min(len - pos);
        f(ci, pos, pos + seg);
        pos += seg;
    }
}

/// Applies one compiled op to `chunk`, which holds the elements at
/// absolute indices `[start, start + chunk.len())`.
// The negated comparison in the unmasked ReLU arm is load-bearing for
// NaN handling; see the inline comment there.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn apply_op(op: &KOp<'_>, chunk: &mut [f32], start: usize) {
    match op {
        KOp::Norm {
            mean,
            inv_std,
            c,
            inner,
            xhat,
        } => for_channel_segments(start, chunk.len(), *c, *inner, |ci, lo, hi| {
            let (mu, is) = (mean[ci], inv_std[ci]);
            match xhat {
                Some(p) => {
                    for (j, v) in chunk[lo..hi].iter_mut().enumerate() {
                        let xh = (*v - mu) * is;
                        // SAFETY: absolute indices are chunk-disjoint.
                        unsafe { *p.get().add(start + lo + j) = xh };
                        *v = xh;
                    }
                }
                None => {
                    for v in &mut chunk[lo..hi] {
                        *v = (*v - mu) * is;
                    }
                }
            }
        }),
        KOp::Affine {
            scale,
            shift,
            c,
            inner,
        } => for_channel_segments(start, chunk.len(), *c, *inner, |ci, lo, hi| {
            let (gc, bc) = (scale[ci], shift[ci]);
            for v in &mut chunk[lo..hi] {
                *v = gc * *v + bc;
            }
        }),
        KOp::Relu { mask } => match mask {
            Some(p) => {
                for (j, v) in chunk.iter_mut().enumerate() {
                    if *v > 0.0 {
                        // SAFETY: absolute indices are chunk-disjoint.
                        unsafe { *p.get().add(start + j) = 1.0 };
                    } else {
                        *v = 0.0;
                    }
                }
            }
            None => {
                for v in chunk.iter_mut() {
                    // `!(v > 0)` (not `v <= 0`) so NaN zeroes exactly as
                    // the eager branch did.
                    if !(*v > 0.0) {
                        *v = 0.0;
                    }
                }
            }
        },
        KOp::Relu6 { mask } => match mask {
            Some(p) => {
                for (j, v) in chunk.iter_mut().enumerate() {
                    if *v > 0.0 && *v < 6.0 {
                        // SAFETY: absolute indices are chunk-disjoint.
                        unsafe { *p.get().add(start + j) = 1.0 };
                    }
                    *v = v.clamp(0.0, 6.0);
                }
            }
            None => {
                for v in chunk.iter_mut() {
                    *v = v.clamp(0.0, 6.0);
                }
            }
        },
        KOp::Add { other } => {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v += other[start + j];
            }
        }
    }
}

/// Runs one pass over the whole buffer (transformed in place) on the
/// worker pool. Ops are applied per cache-block, so merged groups reuse
/// L1/L2-resident data. With `scan`, each chunk additionally folds its
/// final values into a [`RangeScan`] partial while they are still
/// cache-resident, and the partials are combined in chunk-index order —
/// bit-identical to the quantizer's own post-pass sweep (see
/// [`RangeScan`]) with the whole-buffer re-read elided.
fn run_pass(buf: &mut [f32], ops: &[KOp<'_>], scan: bool) -> Option<RangeScan> {
    let len = buf.len();
    let base = SendPtr(buf.as_mut_ptr());
    let grid = ChunkGrid::new(len, BLOCK_ELEMS);
    if !scan {
        parallel_for_chunks(grid, |_c, start, end| {
            // SAFETY: the grid's chunks are disjoint and `buf` outlives
            // the dispatch, which blocks until every chunk completes.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            for op in ops {
                apply_op(op, chunk, start);
            }
        });
        return None;
    }
    let parts = parallel_map_chunks(grid, RangeScan::new, |_c, start, end, acc| {
        // SAFETY: as above — disjoint chunks, buf outlives the dispatch.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        for op in ops {
            apply_op(op, chunk, start);
        }
        for &v in chunk.iter() {
            acc.observe(v);
        }
    });
    let mut scan = RangeScan::new();
    for p in parts {
        scan.merge(p);
    }
    Some(scan)
}

/// Per-group tap buffers, allocated before execution.
struct GroupTaps {
    xhat: Option<Vec<f32>>,
    mask: Option<Vec<f32>>,
}

/// Executes a chain of groups over `src`, returning the output tensor
/// and one optional cache per group (in group order). Takes the input
/// by value: its storage becomes the working buffer, so the executor
/// allocates nothing for the chain value itself and the first pass
/// transforms in place instead of seeding a fresh buffer.
fn execute(
    src: Tensor,
    groups: Vec<EwGroup>,
    mode: FusionMode,
) -> Result<(Tensor, Vec<Option<Cache>>)> {
    if groups.is_empty() {
        return Ok((src, Vec::new()));
    }
    let len = src.len();
    let dims = src.dims().to_vec();
    for g in &groups {
        if let Some((c, inner)) = g.geom {
            if c == 0 || inner == 0 || !len.is_multiple_of(c * inner) {
                return Err(NnError::Param(format!(
                    "graph: channel geometry ({c}, {inner}) does not tile {len} elements"
                )));
            }
        }
        for op in &g.ops {
            if let EwOp::Add(other) = op {
                if other.len() != len {
                    return Err(NnError::Param(format!(
                        "graph: add operand has {} elements, chain has {len}",
                        other.len()
                    )));
                }
            }
        }
    }

    let n_groups = groups.len();
    // Pass segmentation: contiguous group ranges; fused segments end at
    // (and include) the first group carrying a fake-quant, because quant
    // is a whole-tensor reduction and therefore a pass boundary.
    let mut segments: Vec<std::ops::Range<usize>> = Vec::new();
    match mode {
        FusionMode::Unfused => {
            for i in 0..n_groups {
                segments.push(i..i + 1);
            }
        }
        FusionMode::Fused => {
            let mut seg_start = 0;
            for (i, g) in groups.iter().enumerate() {
                if g.quant.is_some() {
                    segments.push(seg_start..i + 1);
                    seg_start = i + 1;
                }
            }
            if seg_start < n_groups {
                segments.push(seg_start..n_groups);
            }
        }
    }

    let mut taps: Vec<GroupTaps> = groups
        .iter()
        .map(|g| GroupTaps {
            xhat: g.want_xhat.then(|| vec![0.0f32; len]),
            mask: g.want_mask.then(|| vec![0.0f32; len]),
        })
        .collect();

    let _sp = cq_obs::span("graph.ew_chain");
    // cq-allow(det-time-source): executor timing telemetry only; never feeds a computation
    let t0 = Instant::now();
    let mut buf = src.into_vec();
    for seg in segments.iter() {
        let mut kops: Vec<KOp<'_>> = Vec::new();
        for gi in seg.clone() {
            let (c, inner) = groups[gi].geom.unwrap_or((1, 1));
            let xhat = taps[gi].xhat.as_mut().map(|v| SendPtr(v.as_mut_ptr()));
            let mask = taps[gi].mask.as_mut().map(|v| SendPtr(v.as_mut_ptr()));
            for op in &groups[gi].ops {
                kops.push(match op {
                    EwOp::Normalize { mean, inv_std } => KOp::Norm {
                        mean,
                        inv_std,
                        c,
                        inner,
                        xhat,
                    },
                    EwOp::Affine { scale, shift } => KOp::Affine {
                        scale,
                        shift,
                        c,
                        inner,
                    },
                    EwOp::Relu => KOp::Relu { mask },
                    EwOp::Relu6 => KOp::Relu6 { mask },
                    EwOp::Add(t) => KOp::Add {
                        other: t.as_slice(),
                    },
                });
            }
        }
        let quant = groups[seg.end - 1].quant;
        let want_scan = matches!(quant, Some((Precision::Bits(_), _)));
        let scan = run_pass(&mut buf, &kops, want_scan);
        if let Some((p, m)) = quant {
            match scan {
                // In-pass range scan: bit-identical values, counters and
                // histograms to the quantizer's own sweep, without the
                // whole-buffer re-read (see `RangeScan`).
                Some(s) => fake_quant_scanned(&mut buf, s, p, m),
                // Precision::Fp carries no grid; the call is a no-op kept
                // for parity with the eager per-layer path.
                None => fake_quant_into(&mut buf, p, m),
            }
        }
    }
    C_EW_EXEC_NS.add(t0.elapsed().as_nanos() as u64);
    if n_groups >= 2 {
        match mode {
            FusionMode::Fused => {
                C_FUSED_CHAINS.add(1);
                let elided = (n_groups - segments.len()) as u64;
                C_ELIDED_BYTES.add(elided * len as u64 * 8);
            }
            FusionMode::Unfused => C_UNFUSED_FALLBACKS.add(1),
        }
    }

    let mut caches = Vec::with_capacity(n_groups);
    for (g, t) in groups.into_iter().zip(taps) {
        caches.push(match g.build {
            Some(build) => {
                let xhat = match t.xhat {
                    Some(v) => Some(Tensor::from_vec(v, &dims)?),
                    None => None,
                };
                Some(build(TapData { xhat, mask: t.mask }))
            }
            None => None,
        });
    }
    Ok((Tensor::from_vec(buf, &dims)?, caches))
}

/// Executes a single group eagerly (the standalone `Layer::forward` path
/// of activation and normalization layers). The group must carry a cache
/// constructor.
pub(crate) fn execute_single(src: &Tensor, group: EwGroup) -> Result<(Tensor, Cache)> {
    let (y, mut caches) = execute(src.clone(), vec![group], fusion_mode())?;
    match caches.pop().flatten() {
        Some(c) => Ok((y, c)),
        None => Err(NnError::Param(
            "graph: single-group execution produced no cache".into(),
        )),
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

/// Drives a chain of [`Layer`]s, recording fusable elementwise work
/// lazily and materializing at barriers (opaque layers, whole-tensor
/// reductions, sanitize scans, [`Recorder::finish`]).
///
/// Used by [`crate::Sequential`] and by the composite blocks in
/// `cq-models`; layers opt in by overriding [`Layer::record`].
pub struct Recorder<'a> {
    ps: &'a ParamSet,
    ctx: &'a ForwardCtx,
    cur: Tensor,
    pending: Vec<EwGroup>,
    /// Per pending group: the cache slot it fills after execution.
    pending_slots: Vec<Option<usize>>,
    /// One slot per `run` call, in layer order.
    slots: Vec<Option<Cache>>,
    /// Slot of the layer currently recording (consumed by `push_group`).
    cur_slot: Option<usize>,
    layer_idx: usize,
}

impl<'a> Recorder<'a> {
    /// Starts a chain at `input`.
    pub fn new(ps: &'a ParamSet, ctx: &'a ForwardCtx, input: Tensor) -> Self {
        Recorder {
            ps,
            ctx,
            cur: input,
            pending: Vec::new(),
            pending_slots: Vec::new(),
            slots: Vec::new(),
            cur_slot: None,
            layer_idx: 0,
        }
    }

    /// The parameter set the chain runs against.
    pub fn ps(&self) -> &'a ParamSet {
        self.ps
    }

    /// The forward context the chain runs under.
    pub fn ctx(&self) -> &'a ForwardCtx {
        self.ctx
    }

    /// The chain value as of the last materialization. Layers that need
    /// actual input data (whole-tensor reductions like BatchNorm
    /// statistics) call [`Recorder::flush_pending`] first.
    pub fn cur(&self) -> &Tensor {
        &self.cur
    }

    /// Executes any pending groups, leaving [`Recorder::cur`] fully
    /// materialized.
    pub(crate) fn flush_pending(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let groups = std::mem::take(&mut self.pending);
        let slot_ids = std::mem::take(&mut self.pending_slots);
        // Hand the chain value's storage to the executor (it becomes the
        // working buffer); on an executor error the recorder is left with
        // a placeholder, which is fine — errors here are fatal to the
        // chain and propagate out of every public entry point.
        let cur = std::mem::replace(&mut self.cur, Tensor::zeros(&[1]));
        let (y, caches) = execute(cur, groups, fusion_mode())?;
        self.cur = y;
        for (slot, cache) in slot_ids.into_iter().zip(caches) {
            if let Some(si) = slot {
                self.slots[si] = cache;
            }
        }
        Ok(())
    }

    /// Materializes pending work and returns the chain value.
    ///
    /// # Errors
    ///
    /// Propagates executor failures (geometry/operand mismatches).
    pub fn materialized(&mut self) -> Result<&Tensor> {
        self.flush_pending()?;
        Ok(&self.cur)
    }

    /// Appends a recorded group to the pending chain. The group's cache
    /// (if it builds one) is routed to the slot of the layer currently
    /// inside [`Recorder::run`].
    pub(crate) fn push_group(&mut self, g: EwGroup) {
        let slot = if g.build.is_some() {
            self.cur_slot.take()
        } else {
            None
        };
        self.pending_slots.push(slot);
        self.pending.push(g);
    }

    /// Records a residual join: `chain = chain + other`. The operand must
    /// already be materialized (it is read, never written), and is taken
    /// as anything convertible to `Arc<Tensor>` so callers that keep the
    /// skip alive can share it without a deep copy.
    ///
    /// # Errors
    ///
    /// Returns an error if `other`'s length differs from the chain's.
    pub fn push_add(&mut self, other: impl Into<Arc<Tensor>>) -> Result<()> {
        let other = other.into();
        if other.len() != self.cur.len() {
            return Err(NnError::Param(format!(
                "graph: residual operand has {} elements, chain has {}",
                other.len(),
                self.cur.len()
            )));
        }
        self.push_group(EwGroup::new(vec![EwOp::Add(other)], None));
        Ok(())
    }

    /// Runs one layer through the chain: fusable layers record their
    /// elementwise groups, opaque layers force a materialization barrier
    /// and execute eagerly. Emits the per-layer span and, when the
    /// context requests sanitization, scans this layer's (materialized)
    /// output with the standard `layer #i (Kind)` attribution label.
    ///
    /// # Errors
    ///
    /// Propagates layer and executor failures; fails the chain on a
    /// fatal sanitizer violation.
    pub fn run(&mut self, layer: &mut dyn Layer) -> Result<()> {
        let i = self.layer_idx;
        self.layer_idx += 1;
        let kind = layer.layer_kind();
        // Per-layer forward timer; layer_kind() is 'static so the hook is
        // allocation-free, and a no-op without an installed sink.
        let _sp = cq_obs::span(kind);
        let slot = self.slots.len();
        self.slots.push(None);
        self.cur_slot = Some(slot);
        let recorded = layer.record(self)?;
        if recorded {
            if self.cur_slot.take().is_some() {
                return Err(NnError::Param(format!(
                    "graph: layer #{i} ({kind}) recorded without producing a cache group"
                )));
            }
        } else {
            self.cur_slot = None;
            self.flush_pending()?;
            let (y, c) = layer.forward(self.ps, &self.cur, self.ctx)?;
            self.cur = y;
            self.slots[slot] = Some(c);
        }
        if self.ctx.sanitize {
            self.flush_pending()?;
            let label = format!("layer #{i} ({kind})");
            if let Some(v) = cq_tensor::sanitize::scan(&label, self.cur.dims(), self.cur.as_slice())
            {
                cq_tensor::sanitize::record(v.clone());
                if v.kind.is_fatal() {
                    return Err(NnError::NonFinite {
                        context: v.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Materializes the chain and returns the output tensor plus one
    /// cache per [`Recorder::run`] call, in layer order.
    ///
    /// # Errors
    ///
    /// Propagates executor failures.
    pub fn finish(mut self) -> Result<(Tensor, Vec<Cache>)> {
        self.flush_pending()?;
        let caches = self
            .slots
            .into_iter()
            .map(|c| c.ok_or_else(|| NnError::Param("graph: a layer produced no cache".into())))
            .collect::<Result<Vec<Cache>>>()?;
        Ok((self.cur, caches))
    }
}

// ---------------------------------------------------------------------------
// Static graph IR
// ---------------------------------------------------------------------------

/// Reduction flavor of a [`NodeOp::Reduce`] node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceKind {
    /// Windowed max (max-pool).
    MaxWindow,
    /// Windowed mean (avg-pool).
    AvgWindow,
    /// Global spatial mean.
    GlobalAvg,
}

/// The operation a [`GraphNode`] performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeOp {
    /// Graph input placeholder.
    Input,
    /// Dense or depthwise convolution.
    Conv {
        /// Depthwise (per-channel) variant.
        depthwise: bool,
        /// Kernel/stride/padding geometry.
        spec: Conv2dSpec,
    },
    /// Dense matrix product (fully connected layer).
    Matmul,
    /// Batch-norm normalize + affine over the channel axis.
    BatchNorm,
    /// ReLU-family activation.
    Activation {
        /// Clamp at 6 (ReLU6) instead of unbounded ReLU.
        clamp6: bool,
    },
    /// Projection onto the activation quantization grid. Zero FLOPs by
    /// the plan convention; a pass boundary for the fusion executor.
    Quantize,
    /// Elementwise binary add (residual join).
    Add,
    /// Window or global reduction (pools).
    Reduce(ReduceKind),
    /// Data-movement-only reshape (zero FLOPs).
    Movement,
}

impl NodeOp {
    /// Whether the fusion executor may merge this node into an
    /// elementwise chain (shape-preserving, element-local; quantize is
    /// chain-legal but ends a pass segment).
    pub fn is_elementwise(&self) -> bool {
        matches!(
            self,
            NodeOp::BatchNorm | NodeOp::Activation { .. } | NodeOp::Quantize | NodeOp::Add
        )
    }
}

/// One node of the lowered [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphNode {
    /// Name, derived from the plan layer that lowered to this node.
    pub name: String,
    /// The operation.
    pub op: NodeOp,
    /// Indices of input nodes (always earlier in the node list).
    pub inputs: Vec<usize>,
    /// Output shape.
    pub out_shape: Vec<usize>,
    /// Row-major contiguous strides of the output.
    pub strides: Vec<usize>,
    /// Activation bit width carried past this node, when stamped by
    /// [`Graph::stamp_act_bits`]; `None` = full precision / unknown.
    pub bits: Option<u8>,
    /// Forward FLOPs of this node (plan conventions).
    pub flops: u64,
    /// Index of the top-level plan layer this node lowered from
    /// (`usize::MAX` for the input node).
    pub layer: usize,
}

/// The lowered static graph of a [`Plan`]: explicit nodes with shapes,
/// strides and FLOPs. This is the single source of truth for shape and
/// FLOP inference — `spec::Plan` delegates its per-layer interpreter
/// here — and the structure `cq-check` validates per configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    nodes: Vec<GraphNode>,
}

fn contiguous_strides(dims: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * dims[i + 1];
    }
    s
}

fn numel(dims: &[usize]) -> u64 {
    dims.iter().map(|&d| d as u64).product()
}

fn want_rank(name: &str, dims: &[usize], rank: usize) -> SpecResult<()> {
    if dims.len() != rank {
        return Err(SpecError {
            layer: name.to_string(),
            kind: SpecErrorKind::Rank {
                expected: rank,
                got: dims.len(),
            },
        });
    }
    Ok(())
}

fn want_axis1(name: &str, dims: &[usize], expected: usize, features: bool) -> SpecResult<()> {
    if dims[1] != expected {
        return Err(SpecError {
            layer: name.to_string(),
            kind: if features {
                SpecErrorKind::Features {
                    expected,
                    got: dims[1],
                }
            } else {
                SpecErrorKind::Channels {
                    expected,
                    got: dims[1],
                }
            },
        });
    }
    Ok(())
}

fn out_hw(name: &str, spec: &Conv2dSpec, h: usize, w: usize) -> SpecResult<(usize, usize)> {
    spec.out_hw(h, w).map_err(|e| SpecError {
        layer: name.to_string(),
        kind: SpecErrorKind::Geometry(e.to_string()),
    })
}

impl Graph {
    /// Lowers a plan at the given input shape, inferring and checking
    /// every node shape along the way.
    ///
    /// # Errors
    ///
    /// Returns the first layer-attributed [`SpecError`], exactly as
    /// [`Plan::infer`] does (it is the same inference).
    pub fn lower(plan: &Plan, input: &[usize]) -> SpecResult<Self> {
        let mut g = Graph::default();
        g.nodes.push(GraphNode {
            name: "input".into(),
            op: NodeOp::Input,
            inputs: Vec::new(),
            out_shape: input.to_vec(),
            strides: contiguous_strides(input),
            bits: None,
            flops: 0,
            layer: usize::MAX,
        });
        let mut cur = 0usize;
        for (li, layer) in plan.layers().iter().enumerate() {
            cur = lower_layer_into(&mut g, layer, cur, li)?;
        }
        Ok(g)
    }

    /// The nodes, in topological (append) order.
    pub fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }

    /// Output shape of the graph (the last node's).
    pub fn output_shape(&self) -> &[usize] {
        &self.nodes[self.nodes.len() - 1].out_shape
    }

    /// Total forward FLOPs over all nodes.
    pub fn flops(&self) -> u64 {
        self.nodes.iter().map(|n| n.flops).sum()
    }

    /// Sum of node FLOPs lowered from top-level plan layer `li`.
    pub fn layer_flops(&self, li: usize) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.layer == li)
            .map(|n| n.flops)
            .sum()
    }

    /// Stamps the activation bit width onto every [`NodeOp::Quantize`]
    /// node (metadata only; `None` clears).
    pub fn stamp_act_bits(&mut self, bits: Option<u8>) {
        for n in &mut self.nodes {
            if n.op == NodeOp::Quantize {
                n.bits = bits;
            }
        }
    }

    /// Structural validation: inputs precede their consumers, elementwise
    /// nodes preserve element count, add operands agree in shape.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> std::result::Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            for &inp in &n.inputs {
                if inp >= i {
                    return Err(format!("node {i} `{}` consumes later node {inp}", n.name));
                }
            }
            if n.strides != contiguous_strides(&n.out_shape) {
                return Err(format!("node {i} `{}` has non-contiguous strides", n.name));
            }
            if n.op.is_elementwise() {
                let inp = n
                    .inputs
                    .first()
                    .copied()
                    .ok_or_else(|| format!("elementwise node {i} `{}` has no input", n.name))?;
                if numel(&self.nodes[inp].out_shape) != numel(&n.out_shape) {
                    return Err(format!(
                        "elementwise node {i} `{}` changes element count",
                        n.name
                    ));
                }
            }
            if n.op == NodeOp::Add {
                if n.inputs.len() != 2 {
                    return Err(format!("add node {i} `{}` is not binary", n.name));
                }
                let (a, b) = (n.inputs[0], n.inputs[1]);
                if self.nodes[a].out_shape != self.nodes[b].out_shape {
                    return Err(format!("add node {i} `{}` operand shapes differ", n.name));
                }
            }
        }
        Ok(())
    }

    /// The statically fusable elementwise chains: maximal runs of
    /// single-consumer elementwise nodes, as the runtime executor would
    /// flush them. Each chain is a list of node indices; only chains of
    /// length >= 2 are returned (a single node has nothing to fuse).
    pub fn fused_chains(&self) -> Vec<Vec<usize>> {
        let mut consumers = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            for &i in &n.inputs {
                consumers[i] += 1;
            }
        }
        // Open chains keyed by tail node; graphs are small, linear scan.
        let mut open: Vec<Vec<usize>> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.op.is_elementwise() {
                continue;
            }
            // cq-allow(no-unwrap): chains are created non-empty and only ever grow
            let tail_of = |ch: &Vec<usize>| *ch.last().expect("chains are non-empty");
            match open
                .iter()
                .position(|ch| n.inputs.contains(&tail_of(ch)) && consumers[tail_of(ch)] == 1)
            {
                Some(k) => open[k].push(i),
                None => open.push(vec![i]),
            }
        }
        open.retain(|ch| ch.len() >= 2);
        open
    }
}

/// Lowers one plan layer into `g`, returning the index of its output
/// node. This is the shape/FLOP inference `spec::infer_layer` delegates
/// to; every check and formula below is the pinned Plan-IR behavior.
pub(crate) fn lower_layer_into(
    g: &mut Graph,
    layer: &LayerSpec,
    input: usize,
    li: usize,
) -> SpecResult<usize> {
    let name = layer.name.as_str();
    let dims = g.nodes[input].out_shape.clone();
    let push = |g: &mut Graph,
                name: String,
                op: NodeOp,
                inputs: Vec<usize>,
                out: Vec<usize>,
                flops: u64| {
        let strides = contiguous_strides(&out);
        g.nodes.push(GraphNode {
            name,
            op,
            inputs,
            out_shape: out,
            strides,
            bits: None,
            flops,
            layer: li,
        });
        g.nodes.len() - 1
    };
    match &layer.kind {
        LayerKind::Conv2d {
            in_ch,
            out_ch,
            spec,
            bias,
        } => {
            want_rank(name, &dims, 4)?;
            want_axis1(name, &dims, *in_ch, false)?;
            let (oh, ow) = out_hw(name, spec, dims[2], dims[3])?;
            let out = vec![dims[0], *out_ch, oh, ow];
            let (kh, kw) = spec.kernel;
            let mut flops = 2 * numel(&out) * (*in_ch as u64) * (kh as u64) * (kw as u64);
            if *bias {
                flops += numel(&out);
            }
            Ok(push(
                g,
                name.to_string(),
                NodeOp::Conv {
                    depthwise: false,
                    spec: *spec,
                },
                vec![input],
                out,
                flops,
            ))
        }
        LayerKind::DepthwiseConv2d { channels, spec } => {
            want_rank(name, &dims, 4)?;
            want_axis1(name, &dims, *channels, false)?;
            let (oh, ow) = out_hw(name, spec, dims[2], dims[3])?;
            let out = vec![dims[0], *channels, oh, ow];
            let (kh, kw) = spec.kernel;
            let flops = 2 * numel(&out) * (kh as u64) * (kw as u64);
            Ok(push(
                g,
                name.to_string(),
                NodeOp::Conv {
                    depthwise: true,
                    spec: *spec,
                },
                vec![input],
                out,
                flops,
            ))
        }
        LayerKind::BatchNorm2d { channels } => {
            want_rank(name, &dims, 4)?;
            want_axis1(name, &dims, *channels, false)?;
            let flops = 2 * numel(&dims);
            Ok(push(
                g,
                name.to_string(),
                NodeOp::BatchNorm,
                vec![input],
                dims,
                flops,
            ))
        }
        LayerKind::BatchNorm1d { features } => {
            want_rank(name, &dims, 2)?;
            want_axis1(name, &dims, *features, true)?;
            let flops = 2 * numel(&dims);
            Ok(push(
                g,
                name.to_string(),
                NodeOp::BatchNorm,
                vec![input],
                dims,
                flops,
            ))
        }
        LayerKind::Linear {
            in_features,
            out_features,
            bias,
        } => {
            want_rank(name, &dims, 2)?;
            want_axis1(name, &dims, *in_features, true)?;
            let out = vec![dims[0], *out_features];
            let mut flops = 2 * (dims[0] as u64) * (*in_features as u64) * (*out_features as u64);
            if *bias {
                flops += numel(&out);
            }
            Ok(push(
                g,
                name.to_string(),
                NodeOp::Matmul,
                vec![input],
                out,
                flops,
            ))
        }
        LayerKind::Relu | LayerKind::Relu6 => {
            let clamp6 = matches!(layer.kind, LayerKind::Relu6);
            let flops = numel(&dims);
            let act = push(
                g,
                name.to_string(),
                NodeOp::Activation { clamp6 },
                vec![input],
                dims.clone(),
                flops,
            );
            // Post-activation fake-quant: zero FLOPs by plan convention,
            // a pass boundary for the fusion executor.
            Ok(push(
                g,
                format!("{name}.q"),
                NodeOp::Quantize,
                vec![act],
                dims,
                0,
            ))
        }
        LayerKind::MaxPool2d { spec } | LayerKind::AvgPool2d { spec } => {
            want_rank(name, &dims, 4)?;
            let (oh, ow) = out_hw(name, spec, dims[2], dims[3])?;
            let out = vec![dims[0], dims[1], oh, ow];
            let (kh, kw) = spec.kernel;
            let flops = numel(&out) * (kh as u64) * (kw as u64);
            let kind = if matches!(layer.kind, LayerKind::MaxPool2d { .. }) {
                ReduceKind::MaxWindow
            } else {
                ReduceKind::AvgWindow
            };
            Ok(push(
                g,
                name.to_string(),
                NodeOp::Reduce(kind),
                vec![input],
                out,
                flops,
            ))
        }
        LayerKind::GlobalAvgPool => {
            want_rank(name, &dims, 4)?;
            let flops = numel(&dims);
            let red = push(
                g,
                name.to_string(),
                NodeOp::Reduce(ReduceKind::GlobalAvg),
                vec![input],
                vec![dims[0], dims[1], 1, 1],
                flops,
            );
            Ok(push(
                g,
                format!("{name}.flatten"),
                NodeOp::Movement,
                vec![red],
                vec![dims[0], dims[1]],
                0,
            ))
        }
        LayerKind::Residual { main, skip } => {
            let mut m = input;
            for l in main.layers() {
                m = lower_layer_into(g, l, m, li)?;
            }
            let s = match skip {
                Some(p) => {
                    let mut s = input;
                    for l in p.layers() {
                        s = lower_layer_into(g, l, s, li)?;
                    }
                    s
                }
                None => input,
            };
            let (ms, ss) = (g.nodes[m].out_shape.clone(), g.nodes[s].out_shape.clone());
            if ms != ss {
                return Err(SpecError {
                    layer: name.to_string(),
                    kind: SpecErrorKind::BranchMismatch { main: ms, skip: ss },
                });
            }
            let flops = numel(&ms);
            Ok(push(
                g,
                format!("{name}.add"),
                NodeOp::Add,
                vec![m, s],
                ms,
                flops,
            ))
        }
        LayerKind::Block(p) => {
            let mut cur = input;
            for l in p.layers() {
                cur = lower_layer_into(g, l, cur, li)?;
            }
            Ok(cur)
        }
    }
}

/// Infers `(output shape, flops)` for one plan layer by lowering it into
/// a scratch graph — the delegate behind `spec::infer_layer`.
pub(crate) fn infer_layer_via_graph(
    layer: &LayerSpec,
    dims: &[usize],
) -> SpecResult<(Vec<usize>, u64)> {
    let mut g = Graph::default();
    g.nodes.push(GraphNode {
        name: "input".into(),
        op: NodeOp::Input,
        inputs: Vec::new(),
        out_shape: dims.to_vec(),
        strides: contiguous_strides(dims),
        bits: None,
        flops: 0,
        layer: usize::MAX,
    });
    let out = lower_layer_into(&mut g, layer, 0, 0)?;
    let flops = g.flops();
    Ok((g.nodes[out].out_shape.clone(), flops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_tensor::par::with_thread_limit;
    use rand::Rng;
    use rand::SeedableRng;

    fn randvec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-4.0f32..4.0)).collect()
    }

    /// A representative chain: BN normalize+affine, residual add,
    /// ReLU with mask tap, trailing 5-bit fake-quant.
    fn chain(len: usize, c: usize, inner: usize, seed: u64) -> (Tensor, Vec<EwGroup>) {
        let x = Tensor::from_vec(randvec(len, seed), &[len]).unwrap();
        let mean = randvec(c, seed + 1);
        let inv_std: Vec<f32> = randvec(c, seed + 2).iter().map(|v| v.abs() + 0.1).collect();
        let scale = randvec(c, seed + 3);
        let shift = randvec(c, seed + 4);
        let skip = Tensor::from_vec(randvec(len, seed + 5), &[len]).unwrap();
        let groups = vec![
            EwGroup::new(
                vec![
                    EwOp::Normalize {
                        mean: mean.clone(),
                        inv_std: inv_std.clone(),
                    },
                    EwOp::Affine {
                        scale: scale.clone(),
                        shift: shift.clone(),
                    },
                ],
                Some((c, inner)),
            )
            .with_xhat_tap()
            .with_cache(|t| Cache::new(t.xhat.expect("xhat tap"))),
            EwGroup::new(vec![EwOp::Add(Arc::new(skip))], None),
            EwGroup::new(vec![EwOp::Relu], None)
                .with_mask_tap()
                .with_cache(|t| Cache::new(t.mask.expect("mask tap")))
                .with_quant(Precision::Bits(5), QuantMode::Round),
        ];
        (x, groups)
    }

    #[test]
    fn fused_matches_unfused_bitwise() {
        for &(len, c, inner) in &[(24usize, 2usize, 3usize), (8192, 4, 16), (12000, 3, 125)] {
            let (x, gf) = chain(len, c, inner, 7);
            let (_, gu) = chain(len, c, inner, 7);
            let (yf, cf) = execute(x.clone(), gf, FusionMode::Fused).unwrap();
            let (yu, cu) = execute(x, gu, FusionMode::Unfused).unwrap();
            assert_eq!(yf.as_slice(), yu.as_slice(), "len={len}");
            let xf = cf[0].as_ref().unwrap().downcast::<Tensor>("t").unwrap();
            let xu = cu[0].as_ref().unwrap().downcast::<Tensor>("t").unwrap();
            assert_eq!(xf.as_slice(), xu.as_slice());
            let mf = cf[2].as_ref().unwrap().downcast::<Vec<f32>>("t").unwrap();
            let mu = cu[2].as_ref().unwrap().downcast::<Vec<f32>>("t").unwrap();
            assert_eq!(mf, mu);
        }
    }

    #[test]
    fn execution_is_thread_count_invariant() {
        let (x, g1) = chain(40_000, 8, 25, 11);
        let baseline = with_thread_limit(1, || execute(x, g1, FusionMode::Fused).unwrap().0);
        for threads in [2, 5, 8] {
            let (x, g) = chain(40_000, 8, 25, 11);
            let y = with_thread_limit(threads, || execute(x, g, FusionMode::Fused).unwrap().0);
            assert_eq!(baseline.as_slice(), y.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn quant_splits_fused_segments() {
        // Two groups with a quant in the middle: fused mode must still
        // materialize before quantizing, so results equal unfused.
        let x = Tensor::from_vec(randvec(600, 3), &[600]).unwrap();
        let mk = || {
            vec![
                EwGroup::new(vec![EwOp::Relu], None)
                    .with_quant(Precision::Bits(3), QuantMode::Round)
                    .with_mask_tap()
                    .with_cache(|t| Cache::new(t.mask.expect("mask"))),
                EwGroup::new(
                    vec![EwOp::Affine {
                        scale: vec![2.0],
                        shift: vec![-1.0],
                    }],
                    Some((1, 1)),
                ),
            ]
        };
        let (yf, _) = execute(x.clone(), mk(), FusionMode::Fused).unwrap();
        let (yu, _) = execute(x, mk(), FusionMode::Unfused).unwrap();
        assert_eq!(yf.as_slice(), yu.as_slice());
    }

    #[test]
    fn geometry_and_operand_validation() {
        let x = Tensor::from_vec(vec![1.0; 10], &[10]).unwrap();
        let bad_geom = vec![EwGroup::new(
            vec![EwOp::Affine {
                scale: vec![1.0; 3],
                shift: vec![0.0; 3],
            }],
            Some((3, 1)),
        )];
        assert!(execute(x.clone(), bad_geom, FusionMode::Fused).is_err());
        let bad_add = vec![EwGroup::new(
            vec![EwOp::Add(Arc::new(
                Tensor::from_vec(vec![0.0; 4], &[4]).unwrap(),
            ))],
            None,
        )];
        assert!(execute(x, bad_add, FusionMode::Fused).is_err());
    }

    #[test]
    fn with_fusion_mode_overrides_and_restores() {
        let outer = fusion_mode();
        with_fusion_mode(FusionMode::Unfused, || {
            assert_eq!(fusion_mode(), FusionMode::Unfused);
            with_fusion_mode(FusionMode::Fused, || {
                assert_eq!(fusion_mode(), FusionMode::Fused);
            });
            assert_eq!(fusion_mode(), FusionMode::Unfused);
        });
        assert_eq!(fusion_mode(), outer);
    }

    #[test]
    fn fusion_counters_account_passes() {
        // Counters only tick with a sink installed; parallel tests share
        // the globals, so assert on deltas with >= bounds.
        let sink = std::sync::Arc::new(cq_obs::sink::MemorySink::new());
        cq_obs::install(sink);
        let get = |n: &str| {
            cq_obs::counter_totals()
                .iter()
                .find(|(k, _)| *k == n)
                .map_or(0, |&(_, v)| v)
        };
        let (chains0, elided0, unfused0) = (
            get("graph.fused_chains"),
            get("fusion.pass_elided_bytes"),
            get("graph.unfused_fallbacks"),
        );
        let (x, g) = chain(512, 2, 4, 21);
        execute(x, g, FusionMode::Fused).unwrap();
        assert!(get("graph.fused_chains") > chains0);
        // 3 groups -> 1 fused pass: 2 elided passes * 512 elems * 8 bytes.
        assert!(get("fusion.pass_elided_bytes") >= elided0 + 2 * 512 * 8);
        let (x, g) = chain(512, 2, 4, 21);
        execute(x, g, FusionMode::Unfused).unwrap();
        assert!(get("graph.unfused_fallbacks") > unfused0);
        cq_obs::uninstall();
    }

    // -- static graph --------------------------------------------------

    fn conv_kind(i: usize, o: usize, k: usize, s: usize, p: usize) -> LayerKind {
        LayerKind::Conv2d {
            in_ch: i,
            out_ch: o,
            spec: Conv2dSpec::new(k, s, p),
            bias: false,
        }
    }

    #[test]
    fn lowering_matches_plan_inference() {
        let mut p = Plan::new();
        p.push("c1", conv_kind(3, 8, 3, 1, 1));
        p.push("bn", LayerKind::BatchNorm2d { channels: 8 });
        p.push("relu", LayerKind::Relu);
        p.push("gap", LayerKind::GlobalAvgPool);
        p.push(
            "fc",
            LayerKind::Linear {
                in_features: 8,
                out_features: 4,
                bias: true,
            },
        );
        let input = [2usize, 3, 16, 16];
        let g = Graph::lower(&p, &input).unwrap();
        g.validate().unwrap();
        assert_eq!(g.output_shape(), p.infer(&input).unwrap().as_slice());
        assert_eq!(g.flops(), p.flops(&input).unwrap());
        // Per-layer FLOPs agree with the trace.
        for (li, r) in p.trace(&input).unwrap().iter().enumerate() {
            assert_eq!(g.layer_flops(li), r.flops, "layer {}", r.name);
        }
        // Node inventory: input, conv, bn, act, quant, reduce, movement,
        // matmul.
        assert_eq!(g.nodes().len(), 8);
        assert!(g.nodes().iter().any(|n| n.op == NodeOp::Quantize));
        assert_eq!(g.nodes()[1].strides, vec![8 * 16 * 16, 16 * 16, 16, 1]);
    }

    #[test]
    fn residual_lowering_flattens_branches() {
        let mut main = Plan::new();
        main.push("m.conv", conv_kind(4, 8, 3, 2, 1));
        main.push("m.bn", LayerKind::BatchNorm2d { channels: 8 });
        let mut skip = Plan::new();
        skip.push("s.conv", conv_kind(4, 8, 1, 2, 0));
        let mut p = Plan::new();
        p.push(
            "block",
            LayerKind::Residual {
                main,
                skip: Some(skip),
            },
        );
        p.push("relu", LayerKind::Relu);
        let input = [2usize, 4, 8, 8];
        let g = Graph::lower(&p, &input).unwrap();
        g.validate().unwrap();
        assert_eq!(g.flops(), p.flops(&input).unwrap());
        let add = g
            .nodes()
            .iter()
            .find(|n| n.op == NodeOp::Add)
            .expect("add node");
        assert_eq!(add.inputs.len(), 2);
        assert_eq!(add.out_shape, vec![2, 8, 4, 4]);
        // bn2 -> add -> relu -> quant is one fusable chain.
        let chains = g.fused_chains();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].len(), 4);
    }

    #[test]
    fn lowering_reports_branch_mismatch_at_residual() {
        let mut main = Plan::new();
        main.push("m.conv", conv_kind(4, 8, 3, 2, 1));
        let mut p = Plan::new();
        p.push("block", LayerKind::Residual { main, skip: None });
        let err = Graph::lower(&p, &[2, 4, 8, 8]).unwrap_err();
        assert_eq!(err.layer, "block");
        assert!(matches!(err.kind, SpecErrorKind::BranchMismatch { .. }));
    }

    #[test]
    fn stamp_act_bits_tags_quantize_nodes() {
        let mut p = Plan::new();
        p.push("relu", LayerKind::Relu);
        let mut g = Graph::lower(&p, &[2, 4]).unwrap();
        g.stamp_act_bits(Some(8));
        let q = g.nodes().iter().find(|n| n.op == NodeOp::Quantize).unwrap();
        assert_eq!(q.bits, Some(8));
        assert!(g
            .nodes()
            .iter()
            .all(|n| n.op == NodeOp::Quantize || n.bits.is_none()));
    }
}
