//! Fully connected layer with optional bias and weight fake-quantization.

use cq_tensor::Tensor;
use rand::Rng;

use crate::{Cache, ForwardCtx, GradSet, Layer, NnError, ParamId, ParamSet, Result};

/// Fully connected layer: `y = x Wᵀ + b`, weight shape `[out, in]`.
///
/// Under a quantized [`ForwardCtx`] the weight is fake-quantized before
/// use; the straight-through estimator passes `dW` gradients unchanged
/// while data gradients flow through the quantized weight.
#[derive(Debug)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    in_features: usize,
    out_features: usize,
}

/// Forward trace of [`Linear`].
struct LinearCache {
    input: Tensor,
    /// Weight actually used in the forward pass (quantized when the ctx
    /// asked for it); `None` means the raw parameter was used.
    used_weight: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer, registering its parameters in `ps`.
    ///
    /// Weights use Xavier-uniform init; the bias (if any) starts at zero.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let w =
            Tensor::xavier_uniform(&[out_features, in_features], in_features, out_features, rng);
        let weight = ps.add(format!("{name}.weight"), w);
        let bias = bias.then(|| ps.add(format!("{name}.bias"), Tensor::zeros(&[out_features])));
        Linear {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight parameter handle.
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }
}

impl Layer for Linear {
    fn layer_kind(&self) -> &'static str {
        "Linear"
    }

    fn forward(&mut self, ps: &ParamSet, x: &Tensor, ctx: &ForwardCtx) -> Result<(Tensor, Cache)> {
        if x.rank() != 2 || x.dims()[1] != self.in_features {
            return Err(NnError::BadInput {
                layer: format!("Linear({}->{})", self.in_features, self.out_features),
                expected: format!("[N, {}]", self.in_features),
                got: x.dims().to_vec(),
            });
        }
        let w = ps.get(self.weight);
        let used = crate::perturb::perturbed_weight(w, self.weight, ctx);
        let y = x.matmul_nt(used.as_ref().unwrap_or(w))?;
        let y = match self.bias {
            Some(b) => y.add_broadcast(ps.get(b))?,
            None => y,
        };
        Ok((
            y,
            Cache::new(LinearCache {
                input: x.clone(),
                used_weight: used,
            }),
        ))
    }

    fn backward(
        &self,
        ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        gs: &mut GradSet,
    ) -> Result<Tensor> {
        let c = cache.downcast::<LinearCache>("Linear")?;
        // dW = dyᵀ x  (STE: same expression whether or not W was quantized)
        let dw = dy.matmul_tn(&c.input)?;
        gs.accumulate(self.weight, &dw)?;
        if let Some(b) = self.bias {
            gs.accumulate(b, &dy.sum_axis(0)?)?;
        }
        // dx = dy W, where W is the weight actually used in forward.
        let w = c
            .used_weight
            .as_ref()
            .unwrap_or_else(|| ps.get(self.weight));
        Ok(dy.matmul(w)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_quant::{Precision, QuantConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamSet, Linear) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let fc = Linear::new(&mut ps, "fc", 3, 2, true, &mut rng);
        (ps, fc)
    }

    #[test]
    fn forward_shape_and_bias() {
        let (mut ps, mut fc) = setup();
        // zero the weight; output should equal the bias
        ps.get_mut(fc.weight_id()).fill(0.0);
        let bias_id = fc.bias.unwrap();
        ps.get_mut(bias_id)
            .as_mut_slice()
            .copy_from_slice(&[1.0, -1.0]);
        let (y, _) = fc
            .forward(&ps, &Tensor::ones(&[2, 3]), &ForwardCtx::eval())
            .unwrap();
        assert_eq!(y.as_slice(), &[1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn rejects_bad_input() {
        let (ps, mut fc) = setup();
        assert!(fc
            .forward(&ps, &Tensor::ones(&[2, 4]), &ForwardCtx::eval())
            .is_err());
        assert!(fc
            .forward(&ps, &Tensor::ones(&[4]), &ForwardCtx::eval())
            .is_err());
    }

    #[test]
    fn gradient_check_fp() {
        let (ps, fc) = setup();
        crate::gradcheck::check_layer(fc, ps, &[4, 3], &ForwardCtx::train(), 1e-2);
    }

    #[test]
    fn quantized_forward_uses_grid_weights() {
        let (ps, mut fc) = setup();
        let ctx = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(2)));
        let x = Tensor::eye(3); // rows pick out weight columns
        let (yq, _) = fc.forward(&ps, &x, &ctx).unwrap();
        let (yf, _) = fc.forward(&ps, &x, &ForwardCtx::eval()).unwrap();
        // 2-bit quantization must actually change the output
        assert!(yq.sub(&yf).unwrap().norm() > 1e-4);
    }

    #[test]
    fn quantized_backward_dx_uses_quantized_weight() {
        let (ps, mut fc) = setup();
        let ctx = ForwardCtx::train().with_quant(QuantConfig::uniform(Precision::Bits(2)));
        let x = Tensor::ones(&[1, 3]);
        let (_, cache) = fc.forward(&ps, &x, &ctx).unwrap();
        let mut gs = ps.zero_grads();
        let dy = Tensor::ones(&[1, 2]);
        let dx = fc.backward(&ps, &cache, &dy, &mut gs).unwrap();
        // dx should equal column sums of the quantized weight, not the raw one
        let wq = cq_quant::fake_quant(
            ps.get(fc.weight_id()),
            Precision::Bits(2),
            cq_quant::QuantMode::Round,
        );
        let expected = wq.sum_axis(0).unwrap();
        for (a, b) in dx.as_slice().iter().zip(expected.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn no_bias_variant() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut fc = Linear::new(&mut ps, "fc", 2, 2, false, &mut rng);
        assert_eq!(ps.len(), 1);
        let (_, cache) = fc
            .forward(&ps, &Tensor::ones(&[1, 2]), &ForwardCtx::train())
            .unwrap();
        let mut gs = ps.zero_grads();
        fc.backward(&ps, &cache, &Tensor::ones(&[1, 2]), &mut gs)
            .unwrap();
    }
}
