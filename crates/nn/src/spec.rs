//! Static shape, parameter and FLOP analysis over layer stacks.
//!
//! A [`Plan`] is a symbolic mirror of a [`crate::Sequential`] network: the
//! same layers, but described by their configuration instead of their
//! weights. Interpreting a plan infers every intermediate shape, parameter
//! count and FLOP cost *without allocating a single tensor*, and rejects
//! invalid stacks (channel mismatches, conv geometry that would underflow,
//! projector dimensions that do not line up) with a layer-attributed
//! [`SpecError`] — before any training-time allocation happens.
//!
//! The model crates build a plan alongside every real network (see
//! `cq-models`); constructors run [`Plan::infer`] on a nominal input so a
//! bad configuration fails at build time with a message naming the exact
//! layer, and the `cq-check` binary runs the same pass over every built-in
//! experiment configuration as a CI gate.
//!
//! # Example
//!
//! ```
//! use cq_nn::spec::{LayerKind, Plan};
//! use cq_tensor::Conv2dSpec;
//!
//! let mut plan = Plan::new();
//! plan.push("stem.conv", LayerKind::Conv2d {
//!     in_ch: 3, out_ch: 8, spec: Conv2dSpec::new(3, 1, 1), bias: false });
//! plan.push("stem.bn", LayerKind::BatchNorm2d { channels: 8 });
//! plan.push("gap", LayerKind::GlobalAvgPool);
//! assert_eq!(plan.infer(&[2, 3, 16, 16])?, vec![2, 8]);
//! assert_eq!(plan.param_count(), 3 * 8 * 9 + 2 * 8);
//! # Ok::<(), cq_nn::spec::SpecError>(())
//! ```

use std::fmt;

use cq_tensor::Conv2dSpec;

/// What went wrong at a specific layer of a [`Plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecErrorKind {
    /// The input tensor rank is wrong.
    Rank {
        /// Rank the layer requires.
        expected: usize,
        /// Rank the incoming shape has.
        got: usize,
    },
    /// The channel axis does not match the layer's configuration.
    Channels {
        /// Channel count the layer was built for.
        expected: usize,
        /// Channel count of the incoming shape.
        got: usize,
    },
    /// The feature axis does not match the layer's configuration.
    Features {
        /// Feature count the layer was built for.
        expected: usize,
        /// Feature count of the incoming shape.
        got: usize,
    },
    /// Convolution/pooling geometry is invalid for the incoming spatial
    /// size (stride 0, kernel larger than the padded input, …).
    Geometry(String),
    /// The residual main and skip branches produce different shapes.
    BranchMismatch {
        /// Output shape of the main branch.
        main: Vec<usize>,
        /// Output shape of the skip branch.
        skip: Vec<usize>,
    },
    /// A configuration-level invariant was violated (zero width, empty
    /// plan where one is required, quantizer bits out of range, …).
    Config(String),
}

/// A layer-attributed static-analysis error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Name of the layer at which inference failed.
    pub layer: String,
    /// The failure itself.
    pub kind: SpecErrorKind,
}

impl SpecError {
    /// Builds a configuration-level error attributed to `layer`.
    pub fn config(layer: impl Into<String>, msg: impl Into<String>) -> Self {
        SpecError {
            layer: layer.into(),
            kind: SpecErrorKind::Config(msg.into()),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layer `{}`: ", self.layer)?;
        match &self.kind {
            SpecErrorKind::Rank { expected, got } => {
                write!(f, "expected rank-{expected} input, got rank {got}")
            }
            SpecErrorKind::Channels { expected, got } => {
                write!(f, "expected {expected} input channels, got {got}")
            }
            SpecErrorKind::Features { expected, got } => {
                write!(f, "expected {expected} input features, got {got}")
            }
            SpecErrorKind::Geometry(msg) => write!(f, "invalid geometry: {msg}"),
            SpecErrorKind::BranchMismatch { main, skip } => {
                write!(
                    f,
                    "residual branches disagree: main {main:?} vs skip {skip:?}"
                )
            }
            SpecErrorKind::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Symbolic description of one layer, mirroring the concrete layer types
/// of this crate (and the composite blocks of `cq-models`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerKind {
    /// Dense convolution (`crate::Conv2d`).
    Conv2d {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Kernel/stride/padding.
        spec: Conv2dSpec,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// Depthwise convolution (`crate::DepthwiseConv2d`).
    DepthwiseConv2d {
        /// Channel count (input == output).
        channels: usize,
        /// Kernel/stride/padding.
        spec: Conv2dSpec,
    },
    /// `crate::BatchNorm2d` over `[N, C, H, W]`.
    BatchNorm2d {
        /// Channel count.
        channels: usize,
    },
    /// `crate::BatchNorm1d` over `[N, F]`.
    BatchNorm1d {
        /// Feature count.
        features: usize,
    },
    /// Fully connected layer (`crate::Linear`).
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// Shape-preserving activation (`crate::Relu`).
    Relu,
    /// Shape-preserving activation (`crate::Relu6`).
    Relu6,
    /// Max pooling (`crate::MaxPool2dLayer`).
    MaxPool2d {
        /// Kernel/stride/padding.
        spec: Conv2dSpec,
    },
    /// Average pooling (`crate::AvgPool2dLayer`).
    AvgPool2d {
        /// Kernel/stride/padding.
        spec: Conv2dSpec,
    },
    /// Global average pooling `[N, C, H, W] -> [N, C]`.
    GlobalAvgPool,
    /// Two-branch residual composite (`BasicBlock` / `InvertedResidual`):
    /// `out = main(x) + skip(x)`, identity skip when `skip` is `None`.
    Residual {
        /// The main branch.
        main: Plan,
        /// The projection skip; `None` = identity.
        skip: Option<Plan>,
    },
    /// An inlined sub-plan (a composite block without a residual sum).
    Block(Plan),
}

/// A named [`LayerKind`] inside a [`Plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSpec {
    /// Layer name (matches the parameter-set naming of the real network).
    pub name: String,
    /// Symbolic layer description.
    pub kind: LayerKind,
}

/// Per-layer result of interpreting a plan — see [`Plan::trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Inferred output shape.
    pub out_shape: Vec<usize>,
    /// Scalar parameters owned by this layer (including sub-plans).
    pub params: usize,
    /// Forward FLOPs for this layer at the traced input size.
    pub flops: u64,
}

/// A symbolic network: an ordered list of [`LayerSpec`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Plan {
    layers: Vec<LayerSpec>,
}

impl Plan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Plan::default()
    }

    /// Appends a named layer.
    pub fn push(&mut self, name: impl Into<String>, kind: LayerKind) -> &mut Self {
        self.layers.push(LayerSpec {
            name: name.into(),
            kind,
        });
        self
    }

    /// Number of (top-level) layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the plan has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Infers the output shape for `input`, checking every layer.
    ///
    /// # Errors
    ///
    /// Returns the first layer-attributed [`SpecError`].
    pub fn infer(&self, input: &[usize]) -> Result<Vec<usize>, SpecError> {
        let mut cur = input.to_vec();
        for layer in &self.layers {
            cur = infer_layer(layer, &cur)?.0;
        }
        Ok(cur)
    }

    /// Total scalar parameter count of the plan.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(param_count_layer).sum()
    }

    /// Total forward FLOPs at the given input size (multiply and add
    /// counted separately, the usual convention).
    ///
    /// # Errors
    ///
    /// Returns the first layer-attributed [`SpecError`].
    pub fn flops(&self, input: &[usize]) -> Result<u64, SpecError> {
        Ok(self.trace(input)?.iter().map(|r| r.flops).sum())
    }

    /// Interprets the plan, returning a per-layer report (shape, params,
    /// FLOPs).
    ///
    /// # Errors
    ///
    /// Returns the first layer-attributed [`SpecError`].
    pub fn trace(&self, input: &[usize]) -> Result<Vec<LayerReport>, SpecError> {
        let mut cur = input.to_vec();
        let mut out = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (shape, flops) = infer_layer(layer, &cur)?;
            out.push(LayerReport {
                name: layer.name.clone(),
                out_shape: shape.clone(),
                params: param_count_layer(layer),
                flops,
            });
            cur = shape;
        }
        Ok(out)
    }

    /// Renders a human-readable per-layer summary table.
    ///
    /// # Errors
    ///
    /// Returns the first layer-attributed [`SpecError`].
    pub fn summarize(&self, input: &[usize]) -> Result<String, SpecError> {
        let reports = self.trace(input)?;
        let mut s = format!(
            "{:<28} {:>18} {:>12} {:>14}\n",
            "layer", "output", "params", "flops"
        );
        for r in &reports {
            s.push_str(&format!(
                "{:<28} {:>18} {:>12} {:>14}\n",
                r.name,
                format!("{:?}", r.out_shape),
                r.params,
                r.flops
            ));
        }
        let total_p: usize = reports.iter().map(|r| r.params).sum();
        let total_f: u64 = reports.iter().map(|r| r.flops).sum();
        s.push_str(&format!(
            "{:<28} {:>18} {:>12} {:>14}\n",
            "total", "", total_p, total_f
        ));
        Ok(s)
    }
}

/// Infers `(output shape, flops)` for one layer by lowering it into a
/// scratch op-graph — `crate::graph` is the single source of truth for
/// shape checks and FLOP formulas (see `Graph::lower`).
fn infer_layer(layer: &LayerSpec, dims: &[usize]) -> Result<(Vec<usize>, u64), SpecError> {
    crate::graph::infer_layer_via_graph(layer, dims)
}

fn param_count_layer(layer: &LayerSpec) -> usize {
    match &layer.kind {
        LayerKind::Conv2d {
            in_ch,
            out_ch,
            spec,
            bias,
        } => {
            let (kh, kw) = spec.kernel;
            out_ch * in_ch * kh * kw + if *bias { *out_ch } else { 0 }
        }
        LayerKind::DepthwiseConv2d { channels, spec } => {
            let (kh, kw) = spec.kernel;
            channels * kh * kw
        }
        LayerKind::BatchNorm2d { channels } => 2 * channels,
        LayerKind::BatchNorm1d { features } => 2 * features,
        LayerKind::Linear {
            in_features,
            out_features,
            bias,
        } => in_features * out_features + if *bias { *out_features } else { 0 },
        LayerKind::Relu
        | LayerKind::Relu6
        | LayerKind::MaxPool2d { .. }
        | LayerKind::AvgPool2d { .. }
        | LayerKind::GlobalAvgPool => 0,
        LayerKind::Residual { main, skip } => {
            main.param_count() + skip.as_ref().map_or(0, Plan::param_count)
        }
        LayerKind::Block(p) => p.param_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(name: &str, i: usize, o: usize, k: usize, s: usize, p: usize) -> LayerSpec {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Conv2d {
                in_ch: i,
                out_ch: o,
                spec: Conv2dSpec::new(k, s, p),
                bias: false,
            },
        }
    }

    #[test]
    fn conv_chain_infers_shapes_and_counts() {
        let mut p = Plan::new();
        p.push("c1", conv("c1", 3, 8, 3, 1, 1).kind);
        p.push("bn", LayerKind::BatchNorm2d { channels: 8 });
        p.push("relu", LayerKind::Relu);
        p.push("c2", conv("c2", 8, 16, 3, 2, 1).kind);
        p.push("gap", LayerKind::GlobalAvgPool);
        assert_eq!(p.infer(&[4, 3, 16, 16]).unwrap(), vec![4, 16]);
        assert_eq!(p.param_count(), 3 * 8 * 9 + 16 + 8 * 16 * 9);
        let tr = p.trace(&[4, 3, 16, 16]).unwrap();
        assert_eq!(tr[3].out_shape, vec![4, 16, 8, 8]);
        // conv flops: 2 * out_elems * in_ch * k*k
        assert_eq!(tr[0].flops, 2 * 4 * 8 * 16 * 16 * 3 * 9);
        assert!(p.summarize(&[4, 3, 16, 16]).unwrap().contains("total"));
    }

    #[test]
    fn channel_mismatch_names_the_layer() {
        let mut p = Plan::new();
        p.push("stem", conv("stem", 3, 8, 3, 1, 1).kind);
        p.push("broken", conv("broken", 16, 8, 3, 1, 1).kind);
        let err = p.infer(&[1, 3, 8, 8]).unwrap_err();
        assert_eq!(err.layer, "broken");
        assert_eq!(
            err.kind,
            SpecErrorKind::Channels {
                expected: 16,
                got: 8
            }
        );
        assert!(err.to_string().contains("`broken`"));
    }

    #[test]
    fn geometry_error_names_the_layer() {
        let mut p = Plan::new();
        p.push("huge", conv("huge", 3, 8, 7, 1, 0).kind);
        let err = p.infer(&[1, 3, 4, 4]).unwrap_err();
        assert_eq!(err.layer, "huge");
        assert!(matches!(err.kind, SpecErrorKind::Geometry(_)));
    }

    #[test]
    fn rank_and_feature_mismatches() {
        let mut p = Plan::new();
        p.push(
            "fc",
            LayerKind::Linear {
                in_features: 8,
                out_features: 4,
                bias: true,
            },
        );
        let err = p.infer(&[1, 8, 2, 2]).unwrap_err();
        assert_eq!(
            err.kind,
            SpecErrorKind::Rank {
                expected: 2,
                got: 4
            }
        );
        let err = p.infer(&[1, 9]).unwrap_err();
        assert_eq!(
            err.kind,
            SpecErrorKind::Features {
                expected: 8,
                got: 9
            }
        );
        assert_eq!(p.infer(&[5, 8]).unwrap(), vec![5, 4]);
        assert_eq!(p.param_count(), 8 * 4 + 4);
    }

    #[test]
    fn residual_branch_agreement_is_checked() {
        let mut main = Plan::new();
        main.push("m.conv", conv("m.conv", 4, 8, 3, 2, 1).kind);
        let mut skip = Plan::new();
        skip.push("s.conv", conv("s.conv", 4, 8, 1, 2, 0).kind);
        let mut p = Plan::new();
        p.push(
            "block",
            LayerKind::Residual {
                main: main.clone(),
                skip: Some(skip),
            },
        );
        assert_eq!(p.infer(&[2, 4, 8, 8]).unwrap(), vec![2, 8, 4, 4]);

        // identity skip cannot match a strided main branch
        let mut bad = Plan::new();
        bad.push("block", LayerKind::Residual { main, skip: None });
        let err = bad.infer(&[2, 4, 8, 8]).unwrap_err();
        assert_eq!(err.layer, "block");
        assert!(matches!(err.kind, SpecErrorKind::BranchMismatch { .. }));
    }

    #[test]
    fn depthwise_and_pool_layers() {
        let mut p = Plan::new();
        p.push(
            "dw",
            LayerKind::DepthwiseConv2d {
                channels: 6,
                spec: Conv2dSpec::new(3, 1, 1),
            },
        );
        p.push(
            "mp",
            LayerKind::MaxPool2d {
                spec: Conv2dSpec::new(2, 2, 0),
            },
        );
        p.push(
            "ap",
            LayerKind::AvgPool2d {
                spec: Conv2dSpec::new(2, 2, 0),
            },
        );
        assert_eq!(p.infer(&[1, 6, 8, 8]).unwrap(), vec![1, 6, 2, 2]);
        assert_eq!(p.param_count(), 6 * 9);
        let err = p.infer(&[1, 5, 8, 8]).unwrap_err();
        assert_eq!(err.layer, "dw");
    }

    #[test]
    fn empty_plan_is_identity() {
        let p = Plan::new();
        assert!(p.is_empty());
        assert_eq!(p.infer(&[7, 3]).unwrap(), vec![7, 3]);
        assert_eq!(p.param_count(), 0);
        assert_eq!(p.flops(&[7, 3]).unwrap(), 0);
    }

    #[test]
    fn spec_error_display_is_layer_attributed() {
        let e = SpecError::config(
            "proj.fc1",
            "input dim 33 does not match encoder features 32",
        );
        let s = e.to_string();
        assert!(s.contains("proj.fc1") && s.contains("33"));
    }
}
