//! Weight perturbation shared by the weight-bearing layers: Eq. 10
//! fake-quantization followed (optionally) by Gaussian weight noise.

use cq_quant::fake_quant_into;
use cq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{ForwardCtx, ParamId};

/// Applies the context's weight perturbations (quantization, then additive
/// Gaussian noise scaled by the tensor's RMS) to `w`. Returns `None` when
/// the context leaves weights untouched, so the common FP path allocates
/// nothing.
pub(crate) fn perturbed_weight(w: &Tensor, id: ParamId, ctx: &ForwardCtx) -> Option<Tensor> {
    if !ctx.perturbs_weights() {
        return None;
    }
    let mut out = w.clone();
    // cq-allow(no-eager-forward): weight-side fake-quant on a detached weight copy; the graph executor owns only the activation stream
    fake_quant_into(out.as_mut_slice(), ctx.quant.weight, ctx.quant.mode);
    if let Some(noise) = ctx.weight_noise {
        let rms = (w.sq_norm() / w.len().max(1) as f32).sqrt();
        let sigma = noise.std * rms;
        if sigma > 0.0 {
            // cq-allow(det-rng-ctor): stream re-derived per call from noise.seed and the layer id; stateless, nothing to checkpoint
            let mut rng = StdRng::seed_from_u64(
                noise.seed ^ (id.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let n = Tensor::randn(w.dims(), 0.0, sigma, &mut rng);
            out.add_assign(&n)
                .expect("noise tensor matches weight shape"); // cq-check: allow — noise drawn with w.dims(), shapes match
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamSet;
    use cq_quant::{Precision, QuantConfig};

    fn weight() -> (ParamSet, ParamId, Tensor) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let w = Tensor::randn(&[16, 9], 0.0, 1.0, &mut rng);
        let id = ps.add("w", w.clone());
        (ps, id, w)
    }

    #[test]
    fn fp_context_returns_none() {
        let (_, id, w) = weight();
        assert!(perturbed_weight(&w, id, &ForwardCtx::train()).is_none());
    }

    #[test]
    fn noise_is_deterministic_per_seed_and_id() {
        let (_, id, w) = weight();
        let ctx = ForwardCtx::train().with_weight_noise(0.1, 7);
        let a = perturbed_weight(&w, id, &ctx).unwrap();
        let b = perturbed_weight(&w, id, &ctx).unwrap();
        assert_eq!(a, b);
        let other = ForwardCtx::train().with_weight_noise(0.1, 8);
        assert_ne!(a, perturbed_weight(&w, id, &other).unwrap());
    }

    #[test]
    fn noise_magnitude_tracks_std() {
        let (_, id, w) = weight();
        let small =
            perturbed_weight(&w, id, &ForwardCtx::train().with_weight_noise(0.01, 1)).unwrap();
        let large =
            perturbed_weight(&w, id, &ForwardCtx::train().with_weight_noise(0.5, 1)).unwrap();
        let ds = small.sub(&w).unwrap().norm();
        let dl = large.sub(&w).unwrap().norm();
        assert!(dl > ds * 10.0, "{dl} vs {ds}");
    }

    #[test]
    fn quant_and_noise_compose() {
        let (_, id, w) = weight();
        let ctx = ForwardCtx::train()
            .with_quant(QuantConfig::uniform(Precision::Bits(4)))
            .with_weight_noise(0.1, 3);
        let both = perturbed_weight(&w, id, &ctx).unwrap();
        let quant_only = perturbed_weight(
            &w,
            id,
            &ForwardCtx::train().with_quant(QuantConfig::uniform(Precision::Bits(4))),
        )
        .unwrap();
        assert_ne!(both, quant_only);
        assert_ne!(both, w);
    }

    #[test]
    fn zero_std_noise_equals_quant_only() {
        let (_, id, w) = weight();
        let ctx = ForwardCtx::train()
            .with_quant(QuantConfig::uniform(Precision::Bits(8)))
            .with_weight_noise(0.0, 3);
        let both = perturbed_weight(&w, id, &ctx).unwrap();
        let q = perturbed_weight(
            &w,
            id,
            &ForwardCtx::train().with_quant(QuantConfig::uniform(Precision::Bits(8))),
        )
        .unwrap();
        assert_eq!(both, q);
    }
}
