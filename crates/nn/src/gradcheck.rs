//! Finite-difference gradient checking, shared by the unit tests of every
//! layer in this crate and by the model crates built on top.
//!
//! The check builds the scalar loss `L = Σ r ⊙ f(x)` for a fixed random
//! coefficient tensor `r`, computes analytic gradients via
//! [`Layer::backward`] with `dy = r`, and compares them against central
//! finite differences for a deterministic subsample of parameter and input
//! coordinates.

use cq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{ForwardCtx, Layer, ParamSet};

/// Maximum number of coordinates checked per tensor; keeps the O(2·forward)
/// cost per coordinate bounded for large layers.
const MAX_COORDS: usize = 24;

fn coord_sample(len: usize) -> Vec<usize> {
    if len <= MAX_COORDS {
        (0..len).collect()
    } else {
        // deterministic stride-based subsample hitting first/last elements
        let stride = len / MAX_COORDS;
        (0..MAX_COORDS).map(|i| (i * stride).min(len - 1)).collect()
    }
}

/// Asserts that `layer`'s analytic gradients match finite differences to
/// relative/absolute tolerance `tol`.
///
/// The input is drawn `N(0, 1)` from a fixed seed; pass the `ctx` the layer
/// should be exercised under (e.g. `Mode::Train` for BatchNorm).
///
/// # Panics
///
/// Panics (test-style assertion) on any gradient mismatch or layer error.
pub fn check_layer<L: Layer>(
    layer: L,
    ps: ParamSet,
    input_shape: &[usize],
    ctx: &ForwardCtx,
    tol: f32,
) {
    check_layer_eps(layer, ps, input_shape, ctx, tol, 1e-2)
}

/// [`check_layer`] for composite blocks containing many ReLU units.
///
/// A central finite difference that happens to *cross* a ReLU kink carries
/// an O(1) error regardless of the step size, so for blocks with hundreds
/// of ReLUs a strict per-coordinate check false-positives on a few sampled
/// coordinates. This variant requires at least 90% of sampled coordinates
/// to pass `tol`; a small finite-difference step (3e-4) keeps the expected
/// number of kink crossings per coordinate low. A genuinely wrong backward
/// pass — e.g. a dropped skip connection or a wrong scale — shifts nearly
/// *all* coordinates and still fails the bulk criterion.
///
/// # Panics
///
/// Panics if more than 10% of coordinates exceed `tol`, or the layer
/// errors.
pub fn check_layer_soft<L: Layer>(
    layer: L,
    ps: ParamSet,
    input_shape: &[usize],
    ctx: &ForwardCtx,
    tol: f32,
) {
    run_check(layer, ps, input_shape, ctx, tol, 3e-4, true)
}

/// [`check_layer`] with an explicit finite-difference step.
///
/// # Panics
///
/// Panics on any gradient mismatch or layer error.
pub fn check_layer_eps<L: Layer>(
    layer: L,
    ps: ParamSet,
    input_shape: &[usize],
    ctx: &ForwardCtx,
    tol: f32,
    eps: f32,
) {
    run_check(layer, ps, input_shape, ctx, tol, eps, false)
}

/// Appends a machine-readable one-line summary of a finished check to the
/// file named by the `CQ_GRADCHECK_LOG` env var (no-op when unset).
///
/// Format: `gradcheck layer=<kind> max_rel=<err> coords=<n>` — one line
/// per [`check_layer`]-family call, consumed by the `cq-check` binary's
/// gradcheck-coverage lint.
fn log_summary(kind: &str, max_rel: f32, coords: usize) {
    let Ok(path) = std::env::var("CQ_GRADCHECK_LOG") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    // Logging is best-effort: an unwritable log must not fail the check.
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(
            f,
            "gradcheck layer={kind} max_rel={max_rel} coords={coords}"
        );
    }
}

fn run_check<L: Layer>(
    mut layer: L,
    mut ps: ParamSet,
    input_shape: &[usize],
    ctx: &ForwardCtx,
    tol: f32,
    eps: f32,
    soft: bool,
) {
    // cq-allow(det-rng-ctor): fixed-seed test utility; the stream is not training state
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let x = Tensor::randn(input_shape, 0.0, 1.0, &mut rng);

    let (y0, cache) = layer
        .forward(&ps, &x, ctx)
        .expect("gradcheck: forward failed"); // cq-check: allow — gradcheck reports failures by panicking
    let r = Tensor::randn(y0.dims(), 0.0, 1.0, &mut rng);

    let mut gs = ps.zero_grads();
    let dx = layer
        .backward(&ps, &cache, &r, &mut gs)
        .expect("gradcheck: backward failed"); // cq-check: allow — gradcheck reports failures by panicking
    assert_eq!(dx.dims(), x.dims(), "input gradient shape mismatch");

    let loss = |layer: &mut L, ps: &ParamSet, x: &Tensor| -> f32 {
        let (y, _) = layer
            .forward(ps, x, ctx)
            .expect("gradcheck: forward failed"); // cq-check: allow — gradcheck reports failures by panicking
        y.as_slice()
            .iter()
            .zip(r.as_slice())
            .map(|(&a, &b)| a * b)
            .sum()
    };

    // (relative error, description) for every sampled coordinate.
    let mut results: Vec<(f32, String)> = Vec::new();

    // Parameter gradients.
    let ids: Vec<_> = ps.iter().map(|(id, _, _)| id).collect();
    for id in ids {
        let len = ps.get(id).len();
        for ci in coord_sample(len) {
            let orig = ps.get(id).as_slice()[ci];
            ps.get_mut(id).as_mut_slice()[ci] = orig + eps;
            let lp = loss(&mut layer, &ps, &x);
            ps.get_mut(id).as_mut_slice()[ci] = orig - eps;
            let lm = loss(&mut layer, &ps, &x);
            ps.get_mut(id).as_mut_slice()[ci] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = gs.get(id).as_slice()[ci];
            let denom = 1.0f32.max(fd.abs()).max(an.abs());
            let rel = (fd - an).abs() / denom;
            results.push((
                rel,
                format!(
                    "param `{}`[{}]: finite-diff {} vs analytic {}",
                    ps.name(id),
                    ci,
                    fd,
                    an
                ),
            ));
        }
    }

    // Input gradients.
    let mut xv = x.clone();
    for ci in coord_sample(x.len()) {
        let orig = xv.as_slice()[ci];
        xv.as_mut_slice()[ci] = orig + eps;
        let lp = loss(&mut layer, &ps, &xv);
        xv.as_mut_slice()[ci] = orig - eps;
        let lm = loss(&mut layer, &ps, &xv);
        xv.as_mut_slice()[ci] = orig;
        let fd = (lp - lm) / (2.0 * eps);
        let an = dx.as_slice()[ci];
        let denom = 1.0f32.max(fd.abs()).max(an.abs());
        let rel = (fd - an).abs() / denom;
        results.push((
            rel,
            format!("input[{ci}]: finite-diff {fd} vs analytic {an}"),
        ));
    }

    // cq-allow(det-float-accum): max-fold is order-independent
    let max_rel = results.iter().map(|(rel, _)| *rel).fold(0.0f32, f32::max);
    log_summary(layer.layer_kind(), max_rel, results.len());

    if soft {
        let failures: Vec<&(f32, String)> = results.iter().filter(|(rel, _)| *rel >= tol).collect();
        let frac = failures.len() as f32 / results.len().max(1) as f32;
        assert!(
            frac <= 0.10,
            "gradcheck (soft): {}/{} coordinates exceed tol {tol}; first: {}",
            failures.len(),
            results.len(),
            failures[0].1
        );
    } else {
        for (rel, desc) in &results {
            assert!(rel < &tol, "{desc}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cache, GradSet, NnError};

    /// y = 2x layer with a deliberately wrong backward, to prove the
    /// checker actually catches errors.
    struct BrokenDouble;
    impl Layer for BrokenDouble {
        fn forward(
            &mut self,
            _ps: &ParamSet,
            x: &Tensor,
            _ctx: &ForwardCtx,
        ) -> Result<(Tensor, Cache), NnError> {
            Ok((x.scale(2.0), Cache::none()))
        }
        fn backward(
            &self,
            _ps: &ParamSet,
            _cache: &Cache,
            dy: &Tensor,
            _gs: &mut GradSet,
        ) -> Result<Tensor, NnError> {
            Ok(dy.scale(3.0)) // wrong: should be 2.0
        }
    }

    struct CorrectDouble;
    impl Layer for CorrectDouble {
        fn forward(
            &mut self,
            _ps: &ParamSet,
            x: &Tensor,
            _ctx: &ForwardCtx,
        ) -> Result<(Tensor, Cache), NnError> {
            Ok((x.scale(2.0), Cache::none()))
        }
        fn backward(
            &self,
            _ps: &ParamSet,
            _cache: &Cache,
            dy: &Tensor,
            _gs: &mut GradSet,
        ) -> Result<Tensor, NnError> {
            Ok(dy.scale(2.0))
        }
    }

    #[test]
    fn accepts_correct_backward() {
        check_layer(
            CorrectDouble,
            ParamSet::new(),
            &[3, 4],
            &ForwardCtx::eval(),
            1e-3,
        );
    }

    #[test]
    #[should_panic(expected = "finite-diff")]
    fn rejects_broken_backward() {
        check_layer(
            BrokenDouble,
            ParamSet::new(),
            &[3, 4],
            &ForwardCtx::eval(),
            1e-3,
        );
    }

    #[test]
    fn summary_logging_appends_machine_readable_line() {
        let path = std::env::temp_dir().join(format!("cq-gradcheck-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CQ_GRADCHECK_LOG", &path);
        check_layer(
            CorrectDouble,
            ParamSet::new(),
            &[2, 2],
            &ForwardCtx::eval(),
            1e-3,
        );
        std::env::remove_var("CQ_GRADCHECK_LOG");
        let log = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(
            log.lines().any(|l| l.starts_with("gradcheck layer=")
                && l.contains("max_rel=")
                && l.contains("coords=")),
            "no summary line in: {log}"
        );
    }

    #[test]
    fn coord_sample_bounds() {
        assert_eq!(coord_sample(5), vec![0, 1, 2, 3, 4]);
        let s = coord_sample(1000);
        assert_eq!(s.len(), MAX_COORDS);
        assert!(s.iter().all(|&i| i < 1000));
    }
}
