//! Supervised losses (softmax cross-entropy, MSE) and accuracy, each
//! returning the loss value together with the gradient w.r.t. the input —
//! the starting point of every backward trace.

use cq_tensor::Tensor;

use crate::{NnError, Result};

/// A scalar loss and its gradient with respect to the loss input.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss w.r.t. the input tensor.
    pub grad: Tensor,
}

/// Softmax cross-entropy over `[N, K]` logits with integer class labels.
///
/// Returns the batch-mean loss and its gradient `(softmax − onehot) / N`.
///
/// # Errors
///
/// Returns an error if `logits` is not rank 2, `labels.len() != N`, or any
/// label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
    if logits.rank() != 2 {
        return Err(NnError::BadInput {
            layer: "softmax_cross_entropy".into(),
            expected: "[N, K] logits".into(),
            got: logits.dims().to_vec(),
        });
    }
    let (n, k) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(NnError::BadInput {
            layer: "softmax_cross_entropy".into(),
            expected: format!("{n} labels"),
            got: vec![labels.len()],
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(NnError::BadInput {
            layer: "softmax_cross_entropy".into(),
            expected: format!("labels < {k}"),
            got: vec![bad],
        });
    }
    let logp = logits.log_softmax_rows()?;
    let mut loss = 0.0f32;
    let mut grad = logp.map(f32::exp); // softmax probabilities
    for (i, &lab) in labels.iter().enumerate() {
        loss -= logp.as_slice()[i * k + lab];
        grad.as_mut_slice()[i * k + lab] -= 1.0;
    }
    loss /= n as f32;
    grad.map_in_place(|v| v / n as f32);
    Ok(LossOutput { loss, grad })
}

/// Mean-squared-error loss between `pred` and `target` (elementwise mean).
///
/// Gradient is `2 (pred − target) / len`.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> Result<LossOutput> {
    let diff = pred.sub(target)?;
    let n = pred.len().max(1) as f32;
    let loss = diff.sq_norm() / n;
    let grad = diff.scale(2.0 / n);
    Ok(LossOutput { loss, grad })
}

/// Top-1 accuracy of `[N, K]` logits against integer labels, in `[0, 1]`.
///
/// # Panics
///
/// Panics if shapes are inconsistent (this is an evaluation helper, not a
/// training-path function).
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.rank(), 2, "accuracy expects [N, K] logits");
    let (n, k) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), n);
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (i, &lab) in labels.iter().enumerate() {
        let row = &logits.as_slice()[i * k..(i + 1) * k];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(j, _)| j)
            .unwrap_or(0);
        if pred == lab {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_uniform_logits_is_log_k() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let logits = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
        let labels = [2usize, 0, 3];
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = softmax_cross_entropy(&lp, &labels).unwrap().loss;
            let fm = softmax_cross_entropy(&lm, &labels).unwrap().loss;
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - out.grad.as_slice()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn ce_grad_rows_sum_to_zero() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let logits = Tensor::randn(&[2, 5], 0.0, 2.0, &mut rng);
        let out = softmax_cross_entropy(&logits, &[1, 4]).unwrap();
        for i in 0..2 {
            let s: f32 = out.grad.as_slice()[i * 5..(i + 1) * 5].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn ce_validates_inputs() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[6]), &[0]).is_err());
    }

    #[test]
    fn mse_basics() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let out = mse_loss(&p, &t).unwrap();
        assert!((out.loss - 2.5).abs() < 1e-6);
        assert_eq!(out.grad.as_slice(), &[1.0, 2.0]);
        assert!(mse_loss(&p, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn mse_gradient_finite_difference() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let p = Tensor::randn(&[6], 0.0, 1.0, &mut rng);
        let t = Tensor::randn(&[6], 0.0, 1.0, &mut rng);
        let out = mse_loss(&p, &t).unwrap();
        let eps = 1e-3;
        for idx in 0..6 {
            let mut pp = p.clone();
            pp.as_mut_slice()[idx] += eps;
            let mut pm = p.clone();
            pm.as_mut_slice()[idx] -= eps;
            let fd =
                (mse_loss(&pp, &t).unwrap().loss - mse_loss(&pm, &t).unwrap().loss) / (2.0 * eps);
            assert!((fd - out.grad.as_slice()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.0, 5.0, 1.0, 1.0], &[2, 3]).unwrap();
        assert_eq!(accuracy(&logits, &[1, 0]), 1.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }
}
