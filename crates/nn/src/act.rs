//! Activation layers. These are also where *activation* fake-quantization
//! happens: under a quantized [`ForwardCtx`] the activation output is
//! projected onto the quantization grid (post-activation quantization, the
//! standard QAT placement), and the straight-through estimator passes
//! gradients through the quantizer unchanged.
//!
//! The forward kernels live in the fused graph executor
//! ([`crate::graph`]): standalone `forward` calls run a single-group
//! chain, while [`Layer::record`] lets a surrounding [`Recorder`] fuse
//! the activation (and its fake-quant) into the preceding elementwise
//! pass.

use cq_tensor::Tensor;

use crate::graph::{execute_single, EwGroup, EwOp, Recorder};
use crate::{Cache, ForwardCtx, GradSet, Layer, ParamSet, Result};

/// Rectified linear unit `y = max(0, x)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu
    }
}

/// Pre-activation sign mask trace shared by [`Relu`] and [`Relu6`].
struct ActCache {
    /// 1.0 where the activation passes gradient, 0.0 elsewhere.
    mask: Vec<f32>,
}

/// The recorded op group for a ReLU-family activation: the activation op,
/// its gradient-mask tap, and the trailing post-activation fake-quant.
fn act_group(op: EwOp, ctx: &ForwardCtx) -> EwGroup {
    EwGroup::new(vec![op], None)
        .with_quant(ctx.quant.act, ctx.quant.mode)
        .with_mask_tap()
        .with_cache(|taps| {
            Cache::new(ActCache {
                // cq-allow(no-unwrap): the group requests a mask tap two lines up
                mask: taps.mask.expect("activation group requests a mask tap"),
            })
        })
}

fn act_backward(layer_name: &str, cache: &Cache, dy: &Tensor) -> Result<Tensor> {
    let c = cache.downcast::<ActCache>(layer_name)?;
    let mut dx = dy.clone();
    for (g, &m) in dx.as_mut_slice().iter_mut().zip(&c.mask) {
        *g *= m;
    }
    Ok(dx)
}

impl Layer for Relu {
    fn layer_kind(&self) -> &'static str {
        "Relu"
    }

    fn forward(&mut self, _ps: &ParamSet, x: &Tensor, ctx: &ForwardCtx) -> Result<(Tensor, Cache)> {
        execute_single(x, act_group(EwOp::Relu, ctx))
    }

    fn record(&mut self, rec: &mut Recorder<'_>) -> Result<bool> {
        let g = act_group(EwOp::Relu, rec.ctx());
        rec.push_group(g);
        Ok(true)
    }

    fn backward(
        &self,
        _ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        _gs: &mut GradSet,
    ) -> Result<Tensor> {
        act_backward("Relu", cache, dy)
    }
}

/// ReLU6 `y = min(max(0, x), 6)` — the MobileNetV2 activation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu6;

impl Relu6 {
    /// Creates a ReLU6 layer.
    pub fn new() -> Self {
        Relu6
    }
}

impl Layer for Relu6 {
    fn layer_kind(&self) -> &'static str {
        "Relu6"
    }

    fn forward(&mut self, _ps: &ParamSet, x: &Tensor, ctx: &ForwardCtx) -> Result<(Tensor, Cache)> {
        execute_single(x, act_group(EwOp::Relu6, ctx))
    }

    fn record(&mut self, rec: &mut Recorder<'_>) -> Result<bool> {
        let g = act_group(EwOp::Relu6, rec.ctx());
        rec.push_group(g);
        Ok(true)
    }

    fn backward(
        &self,
        _ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        _gs: &mut GradSet,
    ) -> Result<Tensor> {
        act_backward("Relu6", cache, dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_quant::{Precision, QuantConfig};

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let (y, _) = r
            .forward(&ParamSet::new(), &x, &ForwardCtx::eval())
            .unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 3.0]);
        let (_, c) = r
            .forward(&ParamSet::new(), &x, &ForwardCtx::eval())
            .unwrap();
        let mut gs = ParamSet::new().zero_grads();
        let dx = r
            .backward(
                &ParamSet::new(),
                &c,
                &Tensor::from_slice(&[5.0, 5.0]),
                &mut gs,
            )
            .unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn relu6_saturates_both_ends() {
        let mut r = Relu6::new();
        let x = Tensor::from_slice(&[-1.0, 3.0, 9.0]);
        let (y, c) = r
            .forward(&ParamSet::new(), &x, &ForwardCtx::eval())
            .unwrap();
        assert_eq!(y.as_slice(), &[0.0, 3.0, 6.0]);
        let mut gs = ParamSet::new().zero_grads();
        let dx = r
            .backward(
                &ParamSet::new(),
                &c,
                &Tensor::from_slice(&[1.0, 1.0, 1.0]),
                &mut gs,
            )
            .unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn activation_quantization_snaps_output() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[0.11, 0.29, 0.53, 0.97, 0.0, 1.9]);
        let ctx = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(2)));
        let (y, _) = r.forward(&ParamSet::new(), &x, &ctx).unwrap();
        // 2 bits over [0, 1.9] => grid step 1.9/3
        let step = 1.9f32 / 3.0;
        for &v in y.as_slice() {
            let k = v / step;
            assert!((k - k.round()).abs() < 1e-4, "{v} off-grid");
        }
    }

    #[test]
    fn gradcheck_relu_like() {
        // use inputs away from the kink; gradcheck draws N(0,1), kinks at 0
        // can flip under eps. Tolerance is loose to absorb that.
        crate::gradcheck::check_layer(
            Relu::new(),
            ParamSet::new(),
            &[4, 6],
            &ForwardCtx::eval(),
            0.3,
        );
        crate::gradcheck::check_layer(
            Relu6::new(),
            ParamSet::new(),
            &[4, 6],
            &ForwardCtx::eval(),
            0.3,
        );
    }
}
