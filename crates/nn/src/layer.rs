//! The [`Layer`] trait and the [`Sequential`] container.

use cq_tensor::Tensor;

use crate::{Cache, ForwardCtx, GradSet, ParamSet, Result};

/// A differentiable network module with trace-based forward/backward.
///
/// `forward` takes `&mut self` so stateful layers (BatchNorm running
/// statistics) can update themselves in training mode; everything needed
/// by `backward` is returned in the [`Cache`], so several forward traces
/// of the same layer can be alive at once — the property Contrastive
/// Quant's multi-branch steps rely on.
pub trait Layer: Send {
    /// Runs the layer on `x`, returning the output and the trace needed by
    /// [`Layer::backward`].
    ///
    /// # Errors
    ///
    /// Returns an error for inputs of unexpected shape.
    fn forward(&mut self, ps: &ParamSet, x: &Tensor, ctx: &ForwardCtx) -> Result<(Tensor, Cache)>;

    /// Backpropagates `dy` through the trace, accumulating parameter
    /// gradients into `gs` and returning the input gradient.
    ///
    /// # Errors
    ///
    /// Returns an error if `cache` was produced by a different layer or
    /// shapes are inconsistent.
    fn backward(
        &self,
        ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        gs: &mut GradSet,
    ) -> Result<Tensor>;

    /// Non-parameter state tensors (e.g. BatchNorm running statistics),
    /// in a deterministic traversal order. Used for checkpointing and for
    /// copying state into a BYOL target network.
    fn state_tensors(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable access to the tensors of [`Layer::state_tensors`], in the
    /// same order.
    fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Short type name used by diagnostics (the numerics sanitizer labels
    /// violations with it). Override in concrete layers.
    fn layer_kind(&self) -> &'static str {
        "layer"
    }

    /// Records this layer's work onto a lazy elementwise chain instead of
    /// executing eagerly. Fusable layers (activations, BatchNorm) push an
    /// op group and return `Ok(true)`; the default `Ok(false)` makes the
    /// [`crate::graph::Recorder`] materialize the chain and fall back to
    /// [`Layer::forward`].
    ///
    /// # Errors
    ///
    /// Returns an error for inputs of unexpected shape, exactly as
    /// [`Layer::forward`] would.
    fn record(&mut self, rec: &mut crate::graph::Recorder<'_>) -> Result<bool> {
        let _ = rec;
        Ok(false)
    }
}

/// A chain of layers applied in order.
///
/// # Example
///
/// ```
/// use cq_nn::{Sequential, Linear, Relu, ParamSet, ForwardCtx, Layer};
/// use cq_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut ps = ParamSet::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut mlp = Sequential::new();
/// mlp.push(Linear::new(&mut ps, "fc1", 4, 8, true, &mut rng));
/// mlp.push(Relu::new());
/// mlp.push(Linear::new(&mut ps, "fc2", 8, 2, true, &mut rng));
/// let (y, _) = mlp.forward(&ps, &Tensor::ones(&[5, 4]), &ForwardCtx::eval())?;
/// assert_eq!(y.dims(), &[5, 2]);
/// # Ok::<(), cq_nn::NnError>(())
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer (for dynamically built networks).
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs only the first `n_layers` layers (e.g. a backbone without its
    /// final pooling, for dense prediction heads). The returned cache is
    /// accepted by [`Layer::backward`], which walks exactly the layers the
    /// cache covers.
    ///
    /// # Errors
    ///
    /// Returns an error if `n_layers` exceeds the chain length or a child
    /// layer fails.
    pub fn forward_upto(
        &mut self,
        ps: &ParamSet,
        x: &Tensor,
        ctx: &ForwardCtx,
        n_layers: usize,
    ) -> Result<(Tensor, Cache)> {
        if n_layers > self.layers.len() {
            return Err(crate::NnError::Param(format!(
                "forward_upto: {} layers requested, chain has {}",
                n_layers,
                self.layers.len()
            )));
        }
        run_layers(&mut self.layers[..n_layers], ps, x, ctx)
    }
}

/// Runs a chain of layers through the graph [`crate::graph::Recorder`]:
/// fusable layers record lazily, everything else executes at
/// materialization barriers. Per-layer spans and sanitize scans happen
/// inside [`crate::graph::Recorder::run`].
fn run_layers(
    layers: &mut [Box<dyn Layer>],
    ps: &ParamSet,
    x: &Tensor,
    ctx: &ForwardCtx,
) -> Result<(Tensor, Cache)> {
    let mut rec = crate::graph::Recorder::new(ps, ctx, x.clone());
    for layer in layers.iter_mut() {
        rec.run(layer.as_mut())?;
    }
    let (y, children) = rec.finish()?;
    Ok((y, Cache::new(SeqCache { children })))
}

/// Trace for [`Sequential`]: one cache per child layer.
struct SeqCache {
    children: Vec<Cache>,
}

impl Layer for Sequential {
    fn forward(&mut self, ps: &ParamSet, x: &Tensor, ctx: &ForwardCtx) -> Result<(Tensor, Cache)> {
        run_layers(&mut self.layers, ps, x, ctx)
    }

    fn backward(
        &self,
        ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        gs: &mut GradSet,
    ) -> Result<Tensor> {
        let c = cache.downcast::<SeqCache>("Sequential")?;
        // Prefix caches (from `forward_upto`) walk only the layers they
        // cover; a full-forward cache covers every layer.
        if c.children.len() > self.layers.len() {
            return Err(crate::NnError::CacheMismatch {
                layer: "Sequential".into(),
            });
        }
        let mut cur = dy.clone();
        for (layer, child) in self.layers[..c.children.len()]
            .iter()
            .zip(&c.children)
            .rev()
        {
            // Per-layer backward timer (same static-name convention as the
            // forward path in `run_layers`).
            let _sp = cq_obs::span(layer.layer_kind());
            cur = layer.backward(ps, child, &cur, gs)?;
        }
        Ok(cur)
    }

    fn state_tensors(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.state_tensors()).collect()
    }

    fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.state_tensors_mut())
            .collect()
    }

    fn layer_kind(&self) -> &'static str {
        "Sequential"
    }
}

/// Copies all non-parameter state (BatchNorm running statistics) from one
/// layer tree to an identically structured one — used when building a BYOL
/// target network.
///
/// # Errors
///
/// Returns [`crate::NnError::Param`] if the trees have different state
/// layouts.
pub fn copy_state(dst: &mut dyn Layer, src: &dyn Layer) -> Result<()> {
    let s = src.state_tensors();
    let mut d = dst.state_tensors_mut();
    if s.len() != d.len() {
        return Err(crate::NnError::Param(format!(
            "state layout mismatch: {} vs {} tensors",
            d.len(),
            s.len()
        )));
    }
    for (dt, st) in d.iter_mut().zip(&s) {
        if dt.dims() != st.dims() {
            return Err(crate::NnError::Param("state tensor shape mismatch".into()));
        }
        dt.as_mut_slice().copy_from_slice(st.as_slice());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu};
    use rand::SeedableRng;

    #[test]
    fn sequential_chains_shapes() {
        let mut ps = ParamSet::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut seq = Sequential::new();
        seq.push(Linear::new(&mut ps, "a", 3, 5, true, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(&mut ps, "b", 5, 2, true, &mut rng));
        assert_eq!(seq.len(), 3);
        let x = Tensor::ones(&[4, 3]);
        let (y, cache) = seq.forward(&ps, &x, &ForwardCtx::eval()).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        let mut gs = ps.zero_grads();
        let dx = seq
            .backward(&ps, &cache, &Tensor::ones(&[4, 2]), &mut gs)
            .unwrap();
        assert_eq!(dx.dims(), &[4, 3]);
    }

    #[test]
    fn sequential_gradcheck() {
        let mut ps = ParamSet::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut seq = Sequential::new();
        seq.push(Linear::new(&mut ps, "g.fc1", 4, 6, true, &mut rng));
        seq.push(Relu::new());
        seq.push(Linear::new(&mut ps, "g.fc2", 6, 3, true, &mut rng));
        crate::gradcheck::check_layer_soft(seq, ps, &[2, 4], &ForwardCtx::eval(), 1e-2);
    }

    #[test]
    fn wrong_cache_rejected() {
        let mut ps = ParamSet::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut seq = Sequential::new();
        seq.push(Linear::new(&mut ps, "a", 3, 3, true, &mut rng));
        let mut gs = ps.zero_grads();
        let bad = Cache::new(7u8);
        assert!(seq
            .backward(&ps, &bad, &Tensor::ones(&[1, 3]), &mut gs)
            .is_err());
    }

    /// Test layer that poisons one output element with NaN.
    struct NanLayer;

    impl Layer for NanLayer {
        fn forward(
            &mut self,
            _ps: &ParamSet,
            x: &Tensor,
            _ctx: &ForwardCtx,
        ) -> Result<(Tensor, Cache)> {
            let mut y = x.clone();
            y.as_mut_slice()[0] = f32::NAN;
            Ok((y, Cache::none()))
        }

        fn backward(
            &self,
            _ps: &ParamSet,
            _cache: &Cache,
            dy: &Tensor,
            _gs: &mut GradSet,
        ) -> Result<Tensor> {
            Ok(dy.clone())
        }

        fn layer_kind(&self) -> &'static str {
            "NanLayer"
        }
    }

    #[test]
    fn sanitize_attributes_nan_to_producing_layer() {
        let mut ps = ParamSet::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut seq = Sequential::new();
        seq.push(Linear::new(&mut ps, "a", 3, 3, true, &mut rng));
        seq.push(NanLayer);
        seq.push(Relu::new());
        let x = Tensor::ones(&[2, 3]);
        // Without the sanitizer the NaN flows through silently.
        assert!(seq.forward(&ps, &x, &ForwardCtx::eval()).is_ok());
        // With it, the pass fails and names the producing layer.
        let err = seq
            .forward(&ps, &x, &ForwardCtx::eval().with_sanitize())
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("layer #1 (NanLayer)"),
            "unattributed error: {msg}"
        );
        let recorded = cq_tensor::sanitize::take_violations();
        assert_eq!(recorded.len(), 1);
        assert!(recorded[0].kind.is_fatal());
    }

    #[test]
    fn empty_sequential_is_identity() {
        let ps = ParamSet::new();
        let mut seq = Sequential::new();
        assert!(seq.is_empty());
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let (y, c) = seq.forward(&ps, &x, &ForwardCtx::eval()).unwrap();
        assert_eq!(y, x);
        let mut gs = ps.zero_grads();
        let dx = seq.backward(&ps, &c, &x, &mut gs).unwrap();
        assert_eq!(dx, x);
    }
}
