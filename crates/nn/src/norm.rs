//! Batch normalisation for NCHW feature maps ([`BatchNorm2d`]) and
//! `[N, C]` feature vectors ([`BatchNorm1d`], used in projection heads).
//!
//! BatchNorm runs in full precision regardless of the quantization config
//! (standard QAT practice: BN is folded into the preceding conv at
//! deployment). Running statistics are layer state, returned by
//! [`Layer::state_tensors`] for checkpointing and BYOL target copies.

use cq_tensor::Tensor;

use crate::graph::{execute_single, EwGroup, EwOp, Recorder};
use crate::{Cache, ForwardCtx, GradSet, Layer, Mode, NnError, ParamId, ParamSet, Result};

/// Shared implementation: normalisation over the channel axis of data laid
/// out as `(outer, channels, inner)`.
#[derive(Debug)]
struct BatchNormInner {
    gamma: ParamId,
    beta: ParamId,
    running_mean: Tensor,
    running_var: Tensor,
    channels: usize,
    momentum: f32,
    eps: f32,
}

/// Forward trace of a batch-norm layer.
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    outer: usize,
    inner: usize,
    mode: Mode,
}

impl BatchNormInner {
    fn new(ps: &mut ParamSet, name: &str, channels: usize, momentum: f32, eps: f32) -> Self {
        let gamma = ps.add(format!("{name}.gamma"), Tensor::ones(&[channels]));
        let beta = ps.add(format!("{name}.beta"), Tensor::zeros(&[channels]));
        BatchNormInner {
            gamma,
            beta,
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            channels,
            momentum,
            eps,
        }
    }

    /// Builds the recorded op group for `x` viewed as
    /// `(outer, channels, inner)`, row-major: batch statistics (and the
    /// running-stat EMA update, in train mode) are computed eagerly here —
    /// they are whole-tensor reductions — while the normalize+affine sweep
    /// itself becomes a fusable [`EwGroup`] whose cache captures the
    /// `xhat` tap.
    fn make_group(
        &mut self,
        ps: &ParamSet,
        x: &Tensor,
        outer: usize,
        inner: usize,
        ctx: &ForwardCtx,
        layer_name: &str,
    ) -> Result<EwGroup> {
        let c = self.channels;
        debug_assert_eq!(x.len(), outer * c * inner);
        let m = (outer * inner) as f32;
        let xs = x.as_slice();

        let (mean, var) = match ctx.mode {
            Mode::Train => {
                if outer * inner < 2 {
                    return Err(NnError::BadInput {
                        layer: layer_name.to_string(),
                        expected: "batch with >= 2 elements per channel in train mode".into(),
                        got: x.dims().to_vec(),
                    });
                }
                let mut mean = vec![0.0f32; c];
                let mut var = vec![0.0f32; c];
                for o in 0..outer {
                    for (ci, mv) in mean.iter_mut().enumerate() {
                        let base = (o * c + ci) * inner;
                        // cq-allow(det-float-accum): contiguous slice sum in index order
                        *mv += xs[base..base + inner].iter().sum::<f32>();
                    }
                }
                for v in &mut mean {
                    *v /= m;
                }
                for o in 0..outer {
                    for ci in 0..c {
                        let base = (o * c + ci) * inner;
                        let mu = mean[ci];
                        var[ci] += xs[base..base + inner]
                            .iter()
                            .map(|&v| (v - mu) * (v - mu))
                            // cq-allow(det-float-accum): contiguous slice sum in index order
                            .sum::<f32>();
                    }
                }
                for v in &mut var {
                    *v /= m;
                }
                // EMA update of running statistics.
                let mom = self.momentum;
                for ((rm, rv), (&mu, &va)) in self
                    .running_mean
                    .as_mut_slice()
                    .iter_mut()
                    .zip(self.running_var.as_mut_slice())
                    .zip(mean.iter().zip(&var))
                {
                    *rm = (1.0 - mom) * *rm + mom * mu;
                    *rv = (1.0 - mom) * *rv + mom * va;
                }
                (mean, var)
            }
            Mode::Eval => (
                self.running_mean.as_slice().to_vec(),
                self.running_var.as_slice().to_vec(),
            ),
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let scale = ps.get(self.gamma).as_slice().to_vec();
        let shift = ps.get(self.beta).as_slice().to_vec();
        let mode = ctx.mode;
        Ok(EwGroup::new(
            vec![
                EwOp::Normalize {
                    mean,
                    inv_std: inv_std.clone(),
                },
                EwOp::Affine { scale, shift },
            ],
            Some((c, inner)),
        )
        .with_xhat_tap()
        .with_cache(move |taps| {
            Cache::new(BnCache {
                // cq-allow(no-unwrap): the group requests an xhat tap two lines up
                xhat: taps.xhat.expect("batch-norm group requests an xhat tap"),
                inv_std,
                outer,
                inner,
                mode,
            })
        }))
    }

    fn backward(
        &self,
        ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        gs: &mut GradSet,
        layer_name: &str,
    ) -> Result<Tensor> {
        let cch = cache.downcast::<BnCache>(layer_name)?;
        let c = self.channels;
        let (outer, inner) = (cch.outer, cch.inner);
        let m = (outer * inner) as f32;
        let dys = dy.as_slice();
        let xh = cch.xhat.as_slice();
        let g = ps.get(self.gamma).as_slice();

        // Per-channel reductions.
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        for o in 0..outer {
            for ci in 0..c {
                let base = (o * c + ci) * inner;
                for k in 0..inner {
                    // cq-allow(no-naive-hot-loop): per-channel reduction over (outer, inner); output is a length-c vector, not a matmul
                    dgamma[ci] += dys[base + k] * xh[base + k];
                    dbeta[ci] += dys[base + k];
                }
            }
        }

        let mut dx = vec![0.0f32; dy.len()];
        match cch.mode {
            Mode::Train => {
                for o in 0..outer {
                    for ci in 0..c {
                        let base = (o * c + ci) * inner;
                        let is = cch.inv_std[ci];
                        let gc = g[ci];
                        let sum_dxhat = dbeta[ci] * gc;
                        let sum_dxhat_xhat = dgamma[ci] * gc;
                        for k in 0..inner {
                            let dxhat = dys[base + k] * gc;
                            dx[base + k] =
                                (is / m) * (m * dxhat - sum_dxhat - xh[base + k] * sum_dxhat_xhat);
                        }
                    }
                }
            }
            Mode::Eval => {
                for o in 0..outer {
                    for (ci, &gc) in g.iter().enumerate() {
                        let base = (o * c + ci) * inner;
                        let coef = gc * cch.inv_std[ci];
                        for k in 0..inner {
                            dx[base + k] = dys[base + k] * coef;
                        }
                    }
                }
            }
        }
        gs.accumulate(self.gamma, &Tensor::from_vec(dgamma, &[c])?)?;
        gs.accumulate(self.beta, &Tensor::from_vec(dbeta, &[c])?)?;
        Ok(Tensor::from_vec(dx, dy.dims())?)
    }
}

/// Batch normalisation over the channel axis of `[N, C, H, W]` inputs.
#[derive(Debug)]
pub struct BatchNorm2d {
    inner: BatchNormInner,
}

impl BatchNorm2d {
    /// Creates a 2-D batch norm with the given channel count
    /// (momentum 0.1, eps 1e-5 — the standard defaults).
    pub fn new(ps: &mut ParamSet, name: &str, channels: usize) -> Self {
        BatchNorm2d {
            inner: BatchNormInner::new(ps, name, channels, 0.1, 1e-5),
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.inner.channels
    }

    /// Validates an `[N, C, H, W]` input and returns the
    /// `(outer, inner)` view of the channel axis.
    fn view(&self, x: &Tensor) -> Result<(usize, usize)> {
        if x.rank() != 4 || x.dims()[1] != self.inner.channels {
            return Err(NnError::BadInput {
                layer: format!("BatchNorm2d({})", self.inner.channels),
                expected: format!("[N, {}, H, W]", self.inner.channels),
                got: x.dims().to_vec(),
            });
        }
        // NCHW is (outer=n, c, inner=h*w) in row-major order already.
        Ok((x.dims()[0], x.dims()[2] * x.dims()[3]))
    }
}

impl Layer for BatchNorm2d {
    fn layer_kind(&self) -> &'static str {
        "BatchNorm2d"
    }

    fn forward(&mut self, ps: &ParamSet, x: &Tensor, ctx: &ForwardCtx) -> Result<(Tensor, Cache)> {
        let (outer, inner) = self.view(x)?;
        let g = self
            .inner
            .make_group(ps, x, outer, inner, ctx, "BatchNorm2d")?;
        execute_single(x, g)
    }

    fn record(&mut self, rec: &mut Recorder<'_>) -> Result<bool> {
        // Statistics are whole-tensor reductions: materialize the chain
        // first, then record the normalize+affine sweep as a fusable group.
        rec.flush_pending()?;
        let (ps, ctx) = (rec.ps(), rec.ctx());
        let (outer, inner) = self.view(rec.cur())?;
        let g = self
            .inner
            .make_group(ps, rec.cur(), outer, inner, ctx, "BatchNorm2d")?;
        rec.push_group(g);
        Ok(true)
    }

    fn backward(
        &self,
        ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        gs: &mut GradSet,
    ) -> Result<Tensor> {
        self.inner.backward(ps, cache, dy, gs, "BatchNorm2d")
    }

    fn state_tensors(&self) -> Vec<&Tensor> {
        vec![&self.inner.running_mean, &self.inner.running_var]
    }

    fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.inner.running_mean, &mut self.inner.running_var]
    }
}

/// Batch normalisation over the feature axis of `[N, C]` inputs
/// (projection / prediction heads).
#[derive(Debug)]
pub struct BatchNorm1d {
    inner: BatchNormInner,
}

impl BatchNorm1d {
    /// Creates a 1-D batch norm with the given feature count.
    pub fn new(ps: &mut ParamSet, name: &str, features: usize) -> Self {
        BatchNorm1d {
            inner: BatchNormInner::new(ps, name, features, 0.1, 1e-5),
        }
    }

    /// Validates an `[N, C]` input and returns the `(outer, inner)` view
    /// of the feature axis.
    fn view(&self, x: &Tensor) -> Result<(usize, usize)> {
        if x.rank() != 2 || x.dims()[1] != self.inner.channels {
            return Err(NnError::BadInput {
                layer: format!("BatchNorm1d({})", self.inner.channels),
                expected: format!("[N, {}]", self.inner.channels),
                got: x.dims().to_vec(),
            });
        }
        Ok((x.dims()[0], 1))
    }
}

impl Layer for BatchNorm1d {
    fn layer_kind(&self) -> &'static str {
        "BatchNorm1d"
    }

    fn forward(&mut self, ps: &ParamSet, x: &Tensor, ctx: &ForwardCtx) -> Result<(Tensor, Cache)> {
        let (outer, inner) = self.view(x)?;
        let g = self
            .inner
            .make_group(ps, x, outer, inner, ctx, "BatchNorm1d")?;
        execute_single(x, g)
    }

    fn record(&mut self, rec: &mut Recorder<'_>) -> Result<bool> {
        rec.flush_pending()?;
        let (ps, ctx) = (rec.ps(), rec.ctx());
        let (outer, inner) = self.view(rec.cur())?;
        let g = self
            .inner
            .make_group(ps, rec.cur(), outer, inner, ctx, "BatchNorm1d")?;
        rec.push_group(g);
        Ok(true)
    }

    fn backward(
        &self,
        ps: &ParamSet,
        cache: &Cache,
        dy: &Tensor,
        gs: &mut GradSet,
    ) -> Result<Tensor> {
        self.inner.backward(ps, cache, dy, gs, "BatchNorm1d")
    }

    fn state_tensors(&self) -> Vec<&Tensor> {
        vec![&self.inner.running_mean, &self.inner.running_var]
    }

    fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.inner.running_mean, &mut self.inner.running_var]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn train_output_is_normalized() {
        let mut ps = ParamSet::new();
        let mut bn = BatchNorm2d::new(&mut ps, "bn", 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[8, 2, 4, 4], 3.0, 2.0, &mut rng);
        let (y, _) = bn.forward(&ps, &x, &ForwardCtx::train()).unwrap();
        // per-channel mean ~ 0, var ~ 1
        for ci in 0..2 {
            let mut vals = Vec::new();
            for n in 0..8 {
                let base = (n * 2 + ci) * 16;
                vals.extend_from_slice(&y.as_slice()[base..base + 16]);
            }
            let t = Tensor::from_slice(&vals);
            assert!(t.mean().abs() < 1e-4, "mean {}", t.mean());
            assert!((t.variance() - 1.0).abs() < 1e-2, "var {}", t.variance());
        }
    }

    #[test]
    fn running_stats_converge_to_data_stats() {
        let mut ps = ParamSet::new();
        let mut bn = BatchNorm2d::new(&mut ps, "bn", 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = Tensor::randn(&[16, 1, 2, 2], 5.0, 3.0, &mut rng);
            bn.forward(&ps, &x, &ForwardCtx::train()).unwrap();
        }
        let rm = bn.inner.running_mean.as_slice()[0];
        let rv = bn.inner.running_var.as_slice()[0];
        assert!((rm - 5.0).abs() < 0.3, "running mean {rm}");
        assert!((rv - 9.0).abs() < 1.5, "running var {rv}");
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut ps = ParamSet::new();
        let mut bn = BatchNorm2d::new(&mut ps, "bn", 1);
        // fresh BN: running mean 0, var 1 => eval is near-identity
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let (y, _) = bn.forward(&ps, &x, &ForwardCtx::eval()).unwrap();
        for (a, b) in y.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn train_rejects_single_element_batch() {
        let mut ps = ParamSet::new();
        let mut bn = BatchNorm1d::new(&mut ps, "bn", 3);
        let x = Tensor::ones(&[1, 3]);
        assert!(bn.forward(&ps, &x, &ForwardCtx::train()).is_err());
        assert!(bn.forward(&ps, &x, &ForwardCtx::eval()).is_ok());
    }

    #[test]
    fn gradcheck_train_2d() {
        let mut ps = ParamSet::new();
        let bn = BatchNorm2d::new(&mut ps, "bn", 2);
        crate::gradcheck::check_layer(bn, ps, &[4, 2, 3, 3], &ForwardCtx::train(), 2e-2);
    }

    #[test]
    fn gradcheck_eval_2d() {
        let mut ps = ParamSet::new();
        let bn = BatchNorm2d::new(&mut ps, "bn", 2);
        crate::gradcheck::check_layer(bn, ps, &[2, 2, 3, 3], &ForwardCtx::eval(), 2e-2);
    }

    #[test]
    fn gradcheck_train_1d() {
        let mut ps = ParamSet::new();
        let bn = BatchNorm1d::new(&mut ps, "bn", 5);
        crate::gradcheck::check_layer(bn, ps, &[6, 5], &ForwardCtx::train(), 2e-2);
    }

    #[test]
    fn state_tensors_exposed_for_checkpointing() {
        let mut ps = ParamSet::new();
        let mut bn = BatchNorm2d::new(&mut ps, "bn", 3);
        assert_eq!(bn.state_tensors().len(), 2);
        bn.state_tensors_mut()[0].fill(7.0);
        assert_eq!(bn.state_tensors()[0].as_slice(), &[7.0, 7.0, 7.0]);
    }

    #[test]
    fn bn_rejects_wrong_shapes() {
        let mut ps = ParamSet::new();
        let mut bn2 = BatchNorm2d::new(&mut ps, "a", 2);
        assert!(bn2
            .forward(&ps, &Tensor::ones(&[2, 3, 2, 2]), &ForwardCtx::eval())
            .is_err());
        let mut bn1 = BatchNorm1d::new(&mut ps, "b", 2);
        assert!(bn1
            .forward(&ps, &Tensor::ones(&[2, 3]), &ForwardCtx::eval())
            .is_err());
    }
}
