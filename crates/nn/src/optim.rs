//! Optimisation: SGD with momentum and weight decay, cosine learning-rate
//! decay (the paper's §4.1 schedule), and gradient clipping.

use cq_tensor::Tensor;

use crate::{GradSet, ParamSet, Result};

/// Hyper-parameters for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Base learning rate (scaled per-step by the schedule).
    pub lr: f32,
    /// Momentum coefficient (paper fine-tuning uses 0.9).
    pub momentum: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
    /// Use Nesterov momentum.
    pub nesterov: bool,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            nesterov: false,
        }
    }
}

/// Stochastic gradient descent with momentum.
///
/// # Example
///
/// ```
/// use cq_nn::{ParamSet, Sgd, SgdConfig};
/// use cq_tensor::Tensor;
///
/// let mut ps = ParamSet::new();
/// let id = ps.add("w", Tensor::ones(&[2]));
/// let mut gs = ps.zero_grads();
/// gs.accumulate(id, &Tensor::ones(&[2]))?;
/// let mut opt = Sgd::new(&ps, SgdConfig { lr: 0.5, momentum: 0.0, ..Default::default() });
/// opt.step(&mut ps, &gs, 0.5)?;
/// assert_eq!(ps.get(id).as_slice(), &[0.5, 0.5]);
/// # Ok::<(), cq_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct Sgd {
    cfg: SgdConfig,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimizer with zeroed momentum buffers matching `ps`.
    pub fn new(ps: &ParamSet, cfg: SgdConfig) -> Self {
        let velocity = ps.iter().map(|(_, _, t)| Tensor::zeros(t.dims())).collect();
        Sgd { cfg, velocity }
    }

    /// The configuration this optimizer was built with.
    pub fn config(&self) -> SgdConfig {
        self.cfg
    }

    /// The momentum buffers, in parameter order (for checkpointing).
    pub fn velocity(&self) -> &[Tensor] {
        &self.velocity
    }

    /// Replaces the momentum buffers (checkpoint restore).
    ///
    /// # Errors
    ///
    /// Returns an error if `velocity` does not match the existing buffers
    /// in count or per-tensor shape; the optimizer is left untouched.
    pub fn set_velocity(&mut self, velocity: Vec<Tensor>) -> Result<()> {
        check_velocity_shapes("SGD", &self.velocity, &velocity)?;
        self.velocity = velocity;
        Ok(())
    }

    /// Applies one update with the given (scheduled) learning rate.
    ///
    /// # Errors
    ///
    /// Returns an error if `ps`/`gs` are not aligned with the optimizer's
    /// momentum buffers.
    pub fn step(&mut self, ps: &mut ParamSet, gs: &GradSet, lr: f32) -> Result<()> {
        if ps.len() != self.velocity.len() || gs.len() != self.velocity.len() {
            return Err(crate::NnError::Param(format!(
                "optimizer built for {} params, got {} params / {} grads",
                self.velocity.len(),
                ps.len(),
                gs.len()
            )));
        }
        let ids: Vec<_> = ps.iter().map(|(id, _, _)| id).collect();
        for (id, v) in ids.into_iter().zip(self.velocity.iter_mut()) {
            let p = ps.get_mut(id);
            let g = gs.get(id);
            let (mu, wd) = (self.cfg.momentum, self.cfg.weight_decay);
            let ps_ = p.as_mut_slice();
            let gs_ = g.as_slice();
            let vs_ = v.as_mut_slice();
            for ((pv, &gv), vv) in ps_.iter_mut().zip(gs_).zip(vs_.iter_mut()) {
                let grad = gv + wd * *pv;
                *vv = mu * *vv + grad;
                let upd = if self.cfg.nesterov {
                    grad + mu * *vv
                } else {
                    *vv
                };
                *pv -= lr * upd;
            }
        }
        Ok(())
    }
}

/// Cosine learning-rate decay with optional linear warmup — the paper's
/// fine-tuning schedule ("cosine learning rate decay with an initial
/// learning rate of 0.1").
///
/// # Example
///
/// ```
/// use cq_nn::CosineSchedule;
///
/// let sched = CosineSchedule::new(0.1, 100, 0);
/// assert!((sched.lr_at(0) - 0.1).abs() < 1e-6);
/// assert!(sched.lr_at(99) < 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineSchedule {
    base_lr: f32,
    total_steps: usize,
    warmup_steps: usize,
}

impl CosineSchedule {
    /// Creates a schedule decaying `base_lr` to ~0 over `total_steps`,
    /// with `warmup_steps` of linear ramp-up first.
    pub fn new(base_lr: f32, total_steps: usize, warmup_steps: usize) -> Self {
        CosineSchedule {
            base_lr,
            total_steps: total_steps.max(1),
            warmup_steps,
        }
    }

    /// Learning rate at the given step (clamped past the end).
    pub fn lr_at(&self, step: usize) -> f32 {
        if step < self.warmup_steps {
            return self.base_lr * (step + 1) as f32 / self.warmup_steps as f32;
        }
        let total = (self.total_steps.saturating_sub(self.warmup_steps)).max(1) as f32;
        let t = ((step - self.warmup_steps) as f32).min(total);
        0.5 * self.base_lr * (1.0 + (std::f32::consts::PI * t / total).cos())
    }
}

/// Global L2 norm of all gradients in `gs` (alias for
/// [`GradSet::global_norm`], exported for harness readability).
pub fn global_grad_norm(gs: &GradSet) -> f32 {
    gs.global_norm()
}

/// Hyper-parameters for [`Lars`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LarsConfig {
    /// Base learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Trust coefficient η (typical: 1e-3).
    pub eta: f32,
    /// Numerical floor for the trust-ratio denominator.
    pub eps: f32,
}

impl Default for LarsConfig {
    fn default() -> Self {
        LarsConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            eta: 1e-3,
            eps: 1e-8,
        }
    }
}

/// LARS (layer-wise adaptive rate scaling) — the optimizer SimCLR uses for
/// large-batch pre-training. Each parameter tensor's update is rescaled by
/// the trust ratio `η · ‖w‖ / (‖g‖ + wd·‖w‖ + eps)`.
///
/// Provided for protocol fidelity with the SimCLR reference; the scaled
/// CPU experiments default to plain [`Sgd`] (small batches do not need
/// layer-wise scaling).
#[derive(Debug)]
pub struct Lars {
    cfg: LarsConfig,
    velocity: Vec<Tensor>,
}

impl Lars {
    /// Creates an optimizer with zeroed momentum buffers matching `ps`.
    pub fn new(ps: &ParamSet, cfg: LarsConfig) -> Self {
        let velocity = ps.iter().map(|(_, _, t)| Tensor::zeros(t.dims())).collect();
        Lars { cfg, velocity }
    }

    /// The momentum buffers, in parameter order (for checkpointing).
    pub fn velocity(&self) -> &[Tensor] {
        &self.velocity
    }

    /// Replaces the momentum buffers (checkpoint restore).
    ///
    /// # Errors
    ///
    /// Returns an error if `velocity` does not match the existing buffers
    /// in count or per-tensor shape; the optimizer is left untouched.
    pub fn set_velocity(&mut self, velocity: Vec<Tensor>) -> Result<()> {
        check_velocity_shapes("LARS", &self.velocity, &velocity)?;
        self.velocity = velocity;
        Ok(())
    }

    /// Applies one update with the given (scheduled) learning rate.
    ///
    /// # Errors
    ///
    /// Returns an error if `ps`/`gs` are not aligned with the optimizer.
    pub fn step(&mut self, ps: &mut ParamSet, gs: &GradSet, lr: f32) -> Result<()> {
        if ps.len() != self.velocity.len() || gs.len() != self.velocity.len() {
            return Err(crate::NnError::Param(format!(
                "LARS built for {} params, got {} params / {} grads",
                self.velocity.len(),
                ps.len(),
                gs.len()
            )));
        }
        let ids: Vec<_> = ps.iter().map(|(id, _, _)| id).collect();
        for (id, v) in ids.into_iter().zip(self.velocity.iter_mut()) {
            let w_norm = ps.get(id).norm();
            let g = gs.get(id);
            let g_norm = g.norm();
            let wd = self.cfg.weight_decay;
            let denom = g_norm + wd * w_norm + self.cfg.eps;
            // Bias/BN parameters start at or near zero; skip trust scaling
            // for them (standard LARS practice).
            let trust = if w_norm > 0.0 && g_norm > 0.0 {
                self.cfg.eta * w_norm / denom
            } else {
                1.0
            };
            let p = ps.get_mut(id);
            let mu = self.cfg.momentum;
            for ((pv, &gv), vv) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(v.as_mut_slice().iter_mut())
            {
                let grad = gv + wd * *pv;
                *vv = mu * *vv + trust * grad;
                *pv -= lr * *vv;
            }
        }
        Ok(())
    }
}

/// Shared shape validation for [`Sgd::set_velocity`] /
/// [`Lars::set_velocity`].
fn check_velocity_shapes(kind: &str, current: &[Tensor], incoming: &[Tensor]) -> Result<()> {
    if incoming.len() != current.len() {
        return Err(crate::NnError::Param(format!(
            "{kind} has {} momentum buffers, checkpoint provides {}",
            current.len(),
            incoming.len()
        )));
    }
    for (i, (cur, inc)) in current.iter().zip(incoming).enumerate() {
        if cur.dims() != inc.dims() {
            return Err(crate::NnError::Param(format!(
                "{kind} momentum buffer {i} has dims {:?}, checkpoint provides {:?}",
                cur.dims(),
                inc.dims()
            )));
        }
    }
    Ok(())
}

/// Clips gradients to a maximum global norm; returns the pre-clip norm so
/// callers can log or detect explosions (the paper reports CQ-B "suffers
/// from severe gradient explosion").
pub fn clip_grad_norm(gs: &mut GradSet, max_norm: f32) -> f32 {
    let norm = gs.global_norm();
    if norm > max_norm && norm > 0.0 {
        gs.scale(max_norm / norm);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_step() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::from_slice(&[1.0, 2.0]));
        let mut gs = ps.zero_grads();
        gs.accumulate(id, &Tensor::from_slice(&[0.5, 0.5])).unwrap();
        let mut opt = Sgd::new(
            &ps,
            SgdConfig {
                lr: 1.0,
                momentum: 0.0,
                weight_decay: 0.0,
                nesterov: false,
            },
        );
        opt.step(&mut ps, &gs, 1.0).unwrap();
        assert_eq!(ps.get(id).as_slice(), &[0.5, 1.5]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::zeros(&[1]));
        let mut gs = ps.zero_grads();
        gs.accumulate(id, &Tensor::from_slice(&[1.0])).unwrap();
        let mut opt = Sgd::new(
            &ps,
            SgdConfig {
                lr: 1.0,
                momentum: 0.9,
                weight_decay: 0.0,
                nesterov: false,
            },
        );
        opt.step(&mut ps, &gs, 1.0).unwrap(); // v=1, p=-1
        opt.step(&mut ps, &gs, 1.0).unwrap(); // v=1.9, p=-2.9
        assert!((ps.get(id).as_slice()[0] + 2.9).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::from_slice(&[10.0]));
        let gs = ps.zero_grads(); // zero gradient; only decay acts
        let mut opt = Sgd::new(
            &ps,
            SgdConfig {
                lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.5,
                nesterov: false,
            },
        );
        opt.step(&mut ps, &gs, 0.1).unwrap();
        assert!((ps.get(id).as_slice()[0] - 9.5).abs() < 1e-6);
    }

    #[test]
    fn nesterov_differs_from_plain() {
        let run = |nesterov: bool| {
            let mut ps = ParamSet::new();
            let id = ps.add("w", Tensor::zeros(&[1]));
            let mut gs = ps.zero_grads();
            gs.accumulate(id, &Tensor::from_slice(&[1.0])).unwrap();
            let mut opt = Sgd::new(
                &ps,
                SgdConfig {
                    lr: 1.0,
                    momentum: 0.9,
                    weight_decay: 0.0,
                    nesterov,
                },
            );
            opt.step(&mut ps, &gs, 1.0).unwrap();
            ps.get(id).as_slice()[0]
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn misaligned_optimizer_rejected() {
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::zeros(&[1]));
        let mut opt = Sgd::new(&ps, SgdConfig::default());
        let mut ps2 = ParamSet::new();
        ps2.add("a", Tensor::zeros(&[1]));
        ps2.add("b", Tensor::zeros(&[1]));
        let gs2 = ps2.zero_grads();
        assert!(opt.step(&mut ps2, &gs2, 0.1).is_err());
    }

    #[test]
    fn cosine_schedule_monotone_after_warmup() {
        let s = CosineSchedule::new(0.1, 100, 10);
        assert!(s.lr_at(0) < s.lr_at(9)); // warming up
        assert!((s.lr_at(10) - 0.1).abs() < 1e-3);
        let mut prev = s.lr_at(10);
        for step in 11..100 {
            let lr = s.lr_at(step);
            assert!(lr <= prev + 1e-7);
            prev = lr;
        }
        assert!(s.lr_at(1000) <= s.lr_at(99) + 1e-7); // clamped past end
    }

    #[test]
    fn lars_scales_update_by_trust_ratio() {
        let mut ps = ParamSet::new();
        // weight with norm 2, gradient with norm 1
        let id = ps.add("w", Tensor::from_slice(&[2.0, 0.0]));
        let mut gs = ps.zero_grads();
        gs.accumulate(id, &Tensor::from_slice(&[1.0, 0.0])).unwrap();
        let cfg = LarsConfig {
            lr: 1.0,
            momentum: 0.0,
            weight_decay: 0.0,
            eta: 0.5,
            eps: 0.0,
        };
        let mut opt = Lars::new(&ps, cfg);
        opt.step(&mut ps, &gs, 1.0).unwrap();
        // trust = 0.5 * 2 / 1 = 1.0 -> update = 1.0 * grad
        assert!((ps.get(id).as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lars_zero_norm_params_fall_back_to_plain_update() {
        let mut ps = ParamSet::new();
        let id = ps.add("b", Tensor::zeros(&[2]));
        let mut gs = ps.zero_grads();
        gs.accumulate(id, &Tensor::from_slice(&[0.5, 0.5])).unwrap();
        let mut opt = Lars::new(
            &ps,
            LarsConfig {
                lr: 1.0,
                momentum: 0.0,
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        opt.step(&mut ps, &gs, 1.0).unwrap();
        assert!((ps.get(id).as_slice()[0] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn lars_rejects_misaligned_sets() {
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::zeros(&[1]));
        let mut opt = Lars::new(&ps, LarsConfig::default());
        let mut ps2 = ParamSet::new();
        ps2.add("a", Tensor::zeros(&[1]));
        ps2.add("b", Tensor::zeros(&[1]));
        let gs2 = ps2.zero_grads();
        assert!(opt.step(&mut ps2, &gs2, 0.1).is_err());
    }

    #[test]
    fn velocity_round_trip_restores_momentum() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::zeros(&[2]));
        let mut gs = ps.zero_grads();
        gs.accumulate(id, &Tensor::from_slice(&[1.0, 2.0])).unwrap();
        let cfg = SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            nesterov: false,
        };
        let mut opt = Sgd::new(&ps, cfg);
        opt.step(&mut ps, &gs, 0.1).unwrap();

        // Clone state mid-run, continue both copies: identical trajectories.
        let saved = opt.velocity().to_vec();
        let mut ps2 = ParamSet::new();
        ps2.add("w", Tensor::zeros(&[2]));
        ps2.copy_from(&ps).unwrap();
        let mut opt2 = Sgd::new(&ps2, cfg);
        opt2.set_velocity(saved).unwrap();
        opt.step(&mut ps, &gs, 0.1).unwrap();
        opt2.step(&mut ps2, &gs, 0.1).unwrap();
        assert_eq!(ps.get(id).as_slice(), ps2.get(id).as_slice());
    }

    #[test]
    fn set_velocity_rejects_mismatched_shapes() {
        let mut ps = ParamSet::new();
        ps.add("w", Tensor::zeros(&[2]));
        let mut opt = Sgd::new(&ps, SgdConfig::default());
        assert!(opt.set_velocity(vec![]).is_err(), "wrong count");
        assert!(
            opt.set_velocity(vec![Tensor::zeros(&[3])]).is_err(),
            "wrong dims"
        );
        // A failed restore leaves the original buffers intact.
        assert_eq!(opt.velocity().len(), 1);
        assert_eq!(opt.velocity()[0].dims(), &[2]);

        let mut lars = Lars::new(&ps, LarsConfig::default());
        assert!(lars.set_velocity(vec![Tensor::zeros(&[3])]).is_err());
        assert!(lars.set_velocity(vec![Tensor::zeros(&[2])]).is_ok());
    }

    #[test]
    fn clipping_caps_global_norm() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::zeros(&[2]));
        let mut gs = ps.zero_grads();
        gs.accumulate(id, &Tensor::from_slice(&[3.0, 4.0])).unwrap();
        let pre = clip_grad_norm(&mut gs, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((gs.global_norm() - 1.0).abs() < 1e-5);
        // under the cap: untouched
        let pre2 = clip_grad_norm(&mut gs, 10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
        assert!((gs.global_norm() - 1.0).abs() < 1e-5);
    }
}
