//! Parameter and gradient storage.
//!
//! All trainable tensors of a model live in one flat [`ParamSet`]; layers
//! hold [`ParamId`] handles into it. This is what lets Contrastive Quant
//! evaluate the *same* parameters under several quantization configs and
//! accumulate all branch gradients into one aligned [`GradSet`].

use std::io::{Read, Write};

use cq_tensor::{read_tensor, write_tensor, Tensor};

use crate::{NnError, Result};

/// Handle to one parameter tensor inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    /// The raw index (stable across clones of the owning set).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Flat store of named parameter tensors.
///
/// # Example
///
/// ```
/// use cq_nn::ParamSet;
/// use cq_tensor::Tensor;
///
/// let mut ps = ParamSet::new();
/// let id = ps.add("w", Tensor::ones(&[2, 2]));
/// assert_eq!(ps.get(id).sum(), 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamSet {
    tensors: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, t: Tensor) -> ParamId {
        self.tensors.push(t);
        self.names.push(name.into());
        ParamId(self.tensors.len() - 1)
    }

    /// The parameter tensor behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` comes from a different set (index out of range).
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access to the parameter tensor behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` comes from a different set.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// The registered name of `id`.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Drops all parameters registered after the first `len` — used to
    /// strip auxiliary heads (e.g. BYOL's predictor) that were registered
    /// after a base model's parameters, restoring alignment with the base
    /// architecture. Handles owned by dropped entries become invalid.
    pub fn truncate(&mut self, len: usize) {
        self.tensors.truncate(len);
        self.names.truncate(len);
    }

    /// Iterates over `(id, name, tensor)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.tensors
            .iter()
            .zip(&self.names)
            .enumerate()
            .map(|(i, (t, n))| (ParamId(i), n.as_str(), t))
    }

    /// Creates a gradient set with one zero tensor per parameter.
    pub fn zero_grads(&self) -> GradSet {
        GradSet {
            tensors: self
                .tensors
                .iter()
                .map(|t| Tensor::zeros(t.dims()))
                .collect(),
        }
    }

    /// Copies every tensor from `src` (shapes must match pairwise); used to
    /// clone model weights into a BYOL target network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Param`] if the sets are not aligned.
    pub fn copy_from(&mut self, src: &ParamSet) -> Result<()> {
        self.check_aligned(src)?;
        for (dst, s) in self.tensors.iter_mut().zip(&src.tensors) {
            dst.as_mut_slice().copy_from_slice(s.as_slice());
        }
        Ok(())
    }

    /// Exponential-moving-average update `self = tau * self + (1-tau) * src`
    /// — BYOL's target-network update.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Param`] if the sets are not aligned.
    pub fn ema_from(&mut self, src: &ParamSet, tau: f32) -> Result<()> {
        self.check_aligned(src)?;
        self.ema_prefix(src, tau);
        Ok(())
    }

    /// EMA update over the leading `self.len()` tensors of `src` — used
    /// when `src` carries extra trailing parameters the destination lacks
    /// (BYOL: the online network's prediction head is registered after the
    /// shared encoder parameters and has no counterpart in the target).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Param`] if `src` has fewer tensors than `self`
    /// or prefix shapes disagree.
    pub fn ema_from_prefix(&mut self, src: &ParamSet, tau: f32) -> Result<()> {
        if src.tensors.len() < self.tensors.len() {
            return Err(NnError::Param(format!(
                "ema_from_prefix: source has {} tensors, destination needs {}",
                src.tensors.len(),
                self.tensors.len()
            )));
        }
        for (a, b) in self.tensors.iter().zip(&src.tensors) {
            if a.dims() != b.dims() {
                return Err(NnError::Param(format!(
                    "ema_from_prefix: shape mismatch {:?} vs {:?}",
                    a.dims(),
                    b.dims()
                )));
            }
        }
        self.ema_prefix(src, tau);
        Ok(())
    }

    fn ema_prefix(&mut self, src: &ParamSet, tau: f32) {
        for (dst, s) in self.tensors.iter_mut().zip(&src.tensors) {
            for (d, &v) in dst.as_mut_slice().iter_mut().zip(s.as_slice()) {
                *d = tau * *d + (1.0 - tau) * v;
            }
        }
    }

    /// Whether every parameter is finite.
    pub fn is_finite(&self) -> bool {
        self.tensors.iter().all(Tensor::is_finite)
    }

    /// Serialises the set (names + tensors) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save<W: Write>(&self, mut w: W) -> Result<()> {
        w.write_all(b"CQPS")?;
        w.write_all(&(self.tensors.len() as u32).to_le_bytes())?;
        for (t, n) in self.tensors.iter().zip(&self.names) {
            let nb = n.as_bytes();
            w.write_all(&(nb.len() as u32).to_le_bytes())?;
            w.write_all(nb)?;
            write_tensor(&mut w, t).map_err(NnError::Tensor)?;
        }
        Ok(())
    }

    /// Deserialises a set previously written with [`ParamSet::save`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] on malformed input.
    pub fn load<R: Read>(mut r: R) -> Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"CQPS" {
            return Err(NnError::Io(format!("bad paramset magic {magic:?}")));
        }
        let mut cnt = [0u8; 4];
        r.read_exact(&mut cnt)?;
        let n = u32::from_le_bytes(cnt) as usize;
        let mut out = ParamSet::new();
        for _ in 0..n {
            let mut nl = [0u8; 4];
            r.read_exact(&mut nl)?;
            let nl = u32::from_le_bytes(nl) as usize;
            if nl > 4096 {
                return Err(NnError::Io(format!("implausible name length {nl}")));
            }
            let mut name = vec![0u8; nl];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name).map_err(|e| NnError::Io(e.to_string()))?;
            let t = read_tensor(&mut r).map_err(NnError::Tensor)?;
            out.add(name, t);
        }
        Ok(out)
    }

    fn check_aligned(&self, src: &ParamSet) -> Result<()> {
        if self.tensors.len() != src.tensors.len() {
            return Err(NnError::Param(format!(
                "param sets not aligned: {} vs {} tensors",
                self.tensors.len(),
                src.tensors.len()
            )));
        }
        for (a, b) in self.tensors.iter().zip(&src.tensors) {
            if a.dims() != b.dims() {
                return Err(NnError::Param(format!(
                    "param sets not aligned: {:?} vs {:?}",
                    a.dims(),
                    b.dims()
                )));
            }
        }
        Ok(())
    }
}

/// Gradient accumulator aligned index-for-index with a [`ParamSet`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GradSet {
    tensors: Vec<Tensor>,
}

impl GradSet {
    /// The accumulated gradient for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` comes from a different set.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access to the gradient for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` comes from a different set.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// Accumulates `g` into the gradient for `id` (`+=`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Tensor`] on shape mismatch.
    pub fn accumulate(&mut self, id: ParamId, g: &Tensor) -> Result<()> {
        self.tensors[id.0].add_assign(g)?;
        Ok(())
    }

    /// Resets all gradients to zero.
    pub fn zero(&mut self) {
        for t in &mut self.tensors {
            t.fill(0.0);
        }
    }

    /// Scales all gradients by `s` (e.g. to average over loss terms).
    pub fn scale(&mut self, s: f32) {
        for t in &mut self.tensors {
            t.map_in_place(|v| v * s);
        }
    }

    /// Global L2 norm across every gradient tensor.
    pub fn global_norm(&self) -> f32 {
        // cq-allow(det-float-accum): tensors summed in fixed registration order
        self.tensors.iter().map(Tensor::sq_norm).sum::<f32>().sqrt()
    }

    /// Whether every gradient is finite — used to detect the gradient
    /// explosions the paper reports for CQ-B.
    pub fn is_finite(&self) -> bool {
        self.tensors.iter().all(Tensor::is_finite)
    }

    /// Number of gradient tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Iterates over the gradient tensors mutably (optimizer use).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Tensor> {
        self.tensors.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_roundtrip() {
        let mut ps = ParamSet::new();
        let a = ps.add("a", Tensor::ones(&[2]));
        let b = ps.add("b", Tensor::zeros(&[3]));
        assert_eq!(ps.get(a).len(), 2);
        assert_eq!(ps.name(b), "b");
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.num_scalars(), 5);
        ps.get_mut(a).fill(3.0);
        assert_eq!(ps.get(a).sum(), 6.0);
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut ps = ParamSet::new();
        let a = ps.add("a", Tensor::ones(&[2]));
        let mut gs = ps.zero_grads();
        gs.accumulate(a, &Tensor::from_slice(&[1.0, 2.0])).unwrap();
        gs.accumulate(a, &Tensor::from_slice(&[1.0, 2.0])).unwrap();
        assert_eq!(gs.get(a).as_slice(), &[2.0, 4.0]);
        assert!((gs.global_norm() - 20.0f32.sqrt()).abs() < 1e-6);
        gs.scale(0.5);
        assert_eq!(gs.get(a).as_slice(), &[1.0, 2.0]);
        gs.zero();
        assert_eq!(gs.get(a).sum(), 0.0);
        assert!(gs.accumulate(a, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn copy_and_ema() {
        let mut a = ParamSet::new();
        a.add("w", Tensor::full(&[2], 1.0));
        let mut b = ParamSet::new();
        b.add("w", Tensor::full(&[2], 3.0));
        let mut t = a.clone();
        t.copy_from(&b).unwrap();
        assert_eq!(t.get(ParamId(0)).as_slice(), &[3.0, 3.0]);
        let mut e = a.clone();
        e.ema_from(&b, 0.5).unwrap();
        assert_eq!(e.get(ParamId(0)).as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn misaligned_sets_rejected() {
        let mut a = ParamSet::new();
        a.add("w", Tensor::zeros(&[2]));
        let mut b = ParamSet::new();
        b.add("w", Tensor::zeros(&[3]));
        assert!(a.clone().copy_from(&b).is_err());
        let mut c = ParamSet::new();
        c.add("w", Tensor::zeros(&[2]));
        c.add("v", Tensor::zeros(&[2]));
        assert!(a.copy_from(&c).is_err());
    }

    #[test]
    fn save_load_round_trip() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        ps.add("conv.w", Tensor::randn(&[4, 9], 0.0, 1.0, &mut rng));
        ps.add("fc.b", Tensor::randn(&[7], 0.0, 1.0, &mut rng));
        let mut buf = Vec::new();
        ps.save(&mut buf).unwrap();
        let back = ParamSet::load(buf.as_slice()).unwrap();
        assert_eq!(back, ps);
        assert_eq!(back.name(ParamId(0)), "conv.w");
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(ParamSet::load(&b"XXXX"[..]).is_err());
    }

    #[test]
    fn finite_checks() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::ones(&[2]));
        assert!(ps.is_finite());
        ps.get_mut(id).as_mut_slice()[0] = f32::INFINITY;
        assert!(!ps.is_finite());
    }
}
