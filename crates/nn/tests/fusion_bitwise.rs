//! Property tests pinning the graph executor's bitwise contract
//! (ISSUE 10 satellite): fused and unfused execution of
//! BN/activation/quantize chains must agree **bit for bit** — outputs,
//! gradients, and updated running statistics — across adversarial shapes
//! and thread limits 1/2/5/8. Any extended-precision carry, reordered
//! reduction, or thread-dependent chunking in the fused path shows up
//! here as a `to_bits` mismatch.

use cq_nn::graph::{with_fusion_mode, FusionMode};
use cq_nn::{BatchNorm1d, BatchNorm2d, ForwardCtx, Layer, ParamSet, Relu, Relu6, Sequential};
use cq_quant::{Precision, QuantConfig, QuantMode};
use cq_tensor::par::with_thread_limit;
use cq_tensor::Tensor;
use proptest::prelude::*;

/// Deterministic, seed-keyed fill with varied sign and magnitude
/// (including values beyond the ReLU6 knee at 6).
fn fill(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let k = (i as u64).wrapping_mul(2654435761).wrapping_add(seed * 97) % 2048;
            (k as f32 / 2048.0 - 0.5) * 16.0
        })
        .collect()
}

/// Builds the stack under test: BN2d -> Relu -> BN2d -> Relu6 over
/// `[n, c, h, w]`, with gamma/beta perturbed away from the (1, 0) init so
/// the affine op is non-trivial.
fn build_stack(c: usize, seed: u64) -> (ParamSet, Sequential) {
    let mut ps = ParamSet::new();
    let mut seq = Sequential::new();
    seq.push(BatchNorm2d::new(&mut ps, "bn1", c));
    seq.push(Relu::new());
    seq.push(BatchNorm2d::new(&mut ps, "bn2", c));
    seq.push(Relu6::new());
    let ids: Vec<_> = ps.iter().map(|(id, _, _)| id).collect();
    for id in ids {
        let scale = if ps.name(id).ends_with(".gamma") {
            0.1
        } else {
            0.05
        };
        for (i, v) in ps.get_mut(id).as_mut_slice().iter_mut().enumerate() {
            *v += ((i as u64 + seed) % 7) as f32 * scale;
        }
    }
    (ps, seq)
}

/// One full fused-vs-unfused comparison at a given thread limit:
/// forward (train mode, quantized), backward, running stats.
#[allow(clippy::too_many_arguments)]
fn assert_bitwise_equal(
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    bits: u8,
    floor: bool,
    threads: usize,
    seed: u64,
) {
    let dims = [n, c, h, w];
    let len = n * c * h * w;
    let x = Tensor::from_vec(fill(len, seed), &dims).unwrap();
    let dy = Tensor::from_vec(fill(len, seed + 1), &dims).unwrap();
    let mut quant = QuantConfig::uniform(Precision::Bits(bits));
    if floor {
        quant.mode = QuantMode::Floor;
    }
    let ctx = ForwardCtx::train().with_quant(quant);

    let run = |mode: FusionMode| {
        let (ps, mut seq) = build_stack(c, seed);
        with_thread_limit(threads, || {
            with_fusion_mode(mode, || {
                let (y, cache) = seq.forward(&ps, &x, &ctx).unwrap();
                let mut gs = ps.zero_grads();
                let dx = seq.backward(&ps, &cache, &dy, &mut gs).unwrap();
                let stats: Vec<u32> = seq
                    .state_tensors()
                    .iter()
                    .flat_map(|t| t.as_slice().iter().map(|v| v.to_bits()))
                    .collect();
                let grads: Vec<u32> = ps
                    .iter()
                    .flat_map(|(id, _, _)| gs.get(id).as_slice().iter().map(|v| v.to_bits()))
                    .collect();
                let ybits: Vec<u32> = y.as_slice().iter().map(|v| v.to_bits()).collect();
                let dxbits: Vec<u32> = dx.as_slice().iter().map(|v| v.to_bits()).collect();
                (ybits, dxbits, grads, stats)
            })
        })
    };

    let fused = run(FusionMode::Fused);
    let unfused = run(FusionMode::Unfused);
    assert_eq!(
        fused.0, unfused.0,
        "forward bits diverge ({dims:?}, t={threads})"
    );
    assert_eq!(
        fused.1, unfused.1,
        "dx bits diverge ({dims:?}, t={threads})"
    );
    assert_eq!(
        fused.2, unfused.2,
        "grad bits diverge ({dims:?}, t={threads})"
    );
    assert_eq!(
        fused.3, unfused.3,
        "running-stat bits diverge ({dims:?}, t={threads})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adversarial shapes — tiny inner extents, single channels, prime
    /// dimensions straddling the executor's chunk size — at every thread
    /// limit the pool contract covers.
    #[test]
    fn fused_equals_unfused_bitwise(
        n in 2usize..=5,
        c in 1usize..=7,
        h in 1usize..=13,
        w in 1usize..=17,
        bits in 2u8..=16,
        floor_raw in 0u8..=1,
        seed in 0u64..512,
    ) {
        for threads in [1usize, 2, 5, 8] {
            assert_bitwise_equal(n, c, h, w, bits, floor_raw == 1, threads, seed);
        }
    }
}

/// A shape big enough that the executor actually splits it into many
/// parallel chunks (crosses the 4096-element block size several times).
#[test]
fn fused_equals_unfused_on_multi_chunk_tensor() {
    for threads in [1usize, 2, 5, 8] {
        assert_bitwise_equal(4, 3, 37, 41, 7, false, threads, 99);
    }
}

/// The 1-D (projection-head) variant: BN1d -> Relu over `[n, features]`,
/// eval mode so running statistics drive normalization.
#[test]
fn fused_equals_unfused_for_bn1d_eval() {
    let (n, f) = (9, 33);
    let x = Tensor::from_vec(fill(n * f, 3), &[n, f]).unwrap();
    let ctx = ForwardCtx::eval().with_quant(QuantConfig::uniform(Precision::Bits(4)));
    let run = |mode: FusionMode| {
        let mut ps = ParamSet::new();
        let mut seq = Sequential::new();
        seq.push(BatchNorm1d::new(&mut ps, "bn", f));
        seq.push(Relu::new());
        with_fusion_mode(mode, || {
            let (y, _) = seq.forward(&ps, &x, &ctx).unwrap();
            y.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u32>>()
        })
    };
    assert_eq!(run(FusionMode::Fused), run(FusionMode::Unfused));
}
