//! Profiling-determinism regression test (ISSUE satellite): running the
//! exact golden-trace workload with `CQ_PROF` timeline profiling ON must
//! reproduce the same per-step losses and sampled bit-width sequence as
//! the unprofiled golden run — profiling reads clocks and stages
//! intervals, but must never perturb RNG draws, the chunk grid, or any
//! reduction order. The goldens below are the same values as
//! `golden_trace.rs`; a divergence here with that test passing means the
//! profiler itself changed training behaviour.
//!
//! Also asserts the timeline is well-formed: span intervals on one
//! thread are properly nested (RAII scopes cannot partially overlap) and
//! every interval carries a sane extent.
//!
//! Single `#[test]` in its own file: the sink and the profiling gate are
//! process-global.

use std::collections::BTreeMap;
use std::sync::Arc;

use cq_core::{Pipeline, PretrainConfig, SimclrTrainer};
use cq_data::{Dataset, DatasetConfig};
use cq_models::{Arch, Encoder, EncoderConfig};
use cq_obs::sink::MemorySink;
use cq_obs::{prof, Event};
use cq_quant::PrecisionSet;

// Must stay byte-for-byte identical to the goldens in `golden_trace.rs`.
const GOLDEN_LOSSES: [f32; 3] = [2.709015, 2.737559, 2.7074358];
const GOLDEN_BITS: [u32; 6] = [6, 7, 13, 10, 16, 11];
const LOSS_TOL: f32 = 1e-5;

#[test]
fn profiled_three_step_pretrain_matches_unprofiled_goldens() {
    let sink = Arc::new(MemorySink::new());
    cq_obs::reset();
    cq_obs::install(sink.clone());
    prof::set_enabled(true);

    let encoder = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8), 7)
        .expect("encoder construction");
    let cfg = PretrainConfig {
        pipeline: Pipeline::CqA,
        precision_set: Some(PrecisionSet::range(6, 16).expect("valid range")),
        epochs: 1,
        batch_size: 8,
        lr: 0.02,
        seed: 7,
        ..Default::default()
    };
    let (train, _test) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(24, 8));
    let mut trainer = SimclrTrainer::new(encoder, cfg).expect("trainer construction");
    trainer.train(&train).expect("3-step pretrain");

    // Drain the main thread's staged intervals into the sink before
    // reading it (workers drain at job boundaries, the caller on flush).
    cq_obs::flush();
    prof::set_enabled(false);
    cq_obs::uninstall();
    let events = sink.take();

    // --- the golden values, bitwise ---
    let losses: Vec<(u64, f32)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Metric { name, step, value } if *name == "train.loss" => {
                Some((*step, *value as f32))
            }
            _ => None,
        })
        .collect();
    let bits: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            Event::Histogram { name, value } if *name == "quant.bits" => Some(*value as u32),
            _ => None,
        })
        .collect();
    assert_eq!(
        losses.len(),
        GOLDEN_LOSSES.len(),
        "one train.loss per step even when profiled: {losses:?}"
    );
    for (i, (golden, (step, actual))) in GOLDEN_LOSSES.iter().zip(&losses).enumerate() {
        assert_eq!(*step, i as u64);
        assert!(
            (golden - actual).abs() <= LOSS_TOL,
            "step {i} loss drifted under profiling: golden {golden}, actual {actual} \
             — the profiler must not perturb training"
        );
    }
    assert_eq!(
        bits,
        GOLDEN_BITS.to_vec(),
        "sampled bit-width sequence drifted under profiling"
    );

    // --- timeline well-formedness ---
    let mut span_lanes: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    let mut n_timeline = 0usize;
    for e in &events {
        if let Event::Timeline {
            cat,
            tid,
            start_ns,
            dur_ns,
            ..
        } = e
        {
            n_timeline += 1;
            let end = start_ns
                .checked_add(*dur_ns)
                .expect("interval extent overflows u64");
            if *cat == prof::CAT_SPAN {
                span_lanes.entry(*tid).or_default().push((*start_ns, end));
            }
        }
    }
    assert!(
        n_timeline > 0,
        "a profiled run must stage timeline intervals"
    );
    // RAII scopes on one thread yield properly nested intervals: sorted
    // by (start asc, end desc), each interval either contains the next
    // or ends before it starts — partial overlap is a malformed stream.
    for (tid, mut lane) in span_lanes {
        lane.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for (s, e) in lane {
            while let Some(&(_, top_end)) = stack.last() {
                if top_end <= s {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(_, top_end)) = stack.last() {
                assert!(
                    e <= top_end,
                    "partial overlap on thread {tid}: [{s}, {e}) vs enclosing end {top_end}"
                );
            }
            stack.push((s, e));
        }
    }
}
