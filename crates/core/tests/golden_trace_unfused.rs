//! Fusion-off golden-trace gate (ISSUE 10 satellite): the same 3-step
//! CQ-A pretrain as `golden_trace.rs`, executed with elementwise fusion
//! disabled, must reproduce the *identical* committed goldens — losses
//! and sampled bit-width sequence. Together with the default-mode run
//! this pins the bitwise contract of the graph executor: fused and
//! unfused chains produce the same bits, so `CQ_FUSION` can never change
//! training results.
//!
//! Single `#[test]` in its own file: the sink is process-global, and the
//! fusion override is thread-local (the trainer runs on this thread; the
//! pool workers only execute chunk closures handed to them, so the mode
//! decided at flush time on this thread governs the whole run).

use std::sync::Arc;

use cq_core::{Pipeline, PretrainConfig, SimclrTrainer};
use cq_data::{Dataset, DatasetConfig};
use cq_models::{Arch, Encoder, EncoderConfig};
use cq_nn::graph::{with_fusion_mode, FusionMode};
use cq_obs::sink::MemorySink;
use cq_obs::Event;
use cq_quant::PrecisionSet;

// The committed goldens from golden_trace.rs — intentionally duplicated
// so a re-baseline there that forgets the unfused path fails loudly here.
const GOLDEN_LOSSES: [f32; 3] = [2.709015, 2.737559, 2.7074358];
const GOLDEN_BITS: [u32; 6] = [6, 7, 13, 10, 16, 11];
const LOSS_TOL: f32 = 1e-5;

#[test]
fn unfused_three_step_cq_a_pretrain_matches_committed_golden() {
    let sink = Arc::new(MemorySink::new());
    cq_obs::reset();
    cq_obs::install(sink.clone());

    with_fusion_mode(FusionMode::Unfused, || {
        let encoder = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8), 7)
            .expect("encoder construction");
        let cfg = PretrainConfig {
            pipeline: Pipeline::CqA,
            precision_set: Some(PrecisionSet::range(6, 16).expect("valid range")),
            epochs: 1,
            batch_size: 8,
            lr: 0.02,
            seed: 7,
            ..Default::default()
        };
        let (train, _test) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(24, 8));
        let mut trainer = SimclrTrainer::new(encoder, cfg).expect("trainer construction");
        trainer.train(&train).expect("3-step pretrain");
    });

    cq_obs::uninstall();
    let events = sink.take();

    let losses: Vec<(u64, f32)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Metric { name, step, value } if *name == "train.loss" => {
                Some((*step, *value as f32))
            }
            _ => None,
        })
        .collect();
    let bits: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            Event::Histogram { name, value } if *name == "quant.bits" => Some(*value as u32),
            _ => None,
        })
        .collect();

    assert_eq!(
        losses.len(),
        GOLDEN_LOSSES.len(),
        "expected one train.loss metric per step, got {losses:?}"
    );
    for (i, (golden, (step, actual))) in GOLDEN_LOSSES.iter().zip(&losses).enumerate() {
        assert_eq!(*step, i as u64, "loss metrics must be keyed by step");
        assert!(
            (golden - actual).abs() <= LOSS_TOL,
            "step {i} unfused loss drifted: golden {golden}, actual {actual} \
             (tol {LOSS_TOL}); the fused/unfused bitwise contract is broken"
        );
    }
    assert_eq!(
        bits,
        GOLDEN_BITS.to_vec(),
        "unfused sampled bit-width sequence drifted from the committed golden"
    );

    // The run must actually have taken the unfused path: multi-group
    // chains report as fallbacks, and no chain may have fused.
    let totals = cq_obs::counter_totals();
    let get = |n: &str| totals.iter().find(|(k, _)| *k == n).map_or(0, |&(_, v)| v);
    assert!(
        get("graph.unfused_fallbacks") > 0,
        "unfused run recorded no multi-group chains — override not applied?"
    );
    assert_eq!(
        get("graph.fused_chains"),
        0,
        "fused chains executed during an unfused-mode run"
    );
}
