//! Property-based tests of the NT-Xent loss (ISSUE satellite).
//!
//! Three laws the SimCLR objective must obey:
//!
//! 1. **Pair-order invariance** — permuting the batch rows of both views
//!    by the same permutation leaves the loss unchanged: NT-Xent treats
//!    pairs as a set.
//! 2. **Monotonicity in the positive similarity** — with every negative
//!    similarity pinned to exactly zero (an orthogonal-basis
//!    construction), increasing one positive pair's cosine similarity
//!    strictly decreases the loss.
//! 3. **Finiteness** — loss and both gradients stay finite across the
//!    temperature range 0.05–1.0 the experiments sweep.

use cq_core::nt_xent;
use cq_tensor::Tensor;
use proptest::prelude::*;

/// Applies `perm` to the rows of an `[n, d]` row-major buffer.
fn permute_rows(data: &[f32], perm: &[usize], d: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(data.len());
    for &src in perm {
        out.extend_from_slice(&data[src * d..(src + 1) * d]);
    }
    out
}

/// Feature batches `(a, b)` over an orthonormal basis of dimension `2n`:
/// `a_i = e_{2i}`, `b_j = e_{2j+1}`, except `b_0 = cosθ·e_0 + sinθ·e_1`.
/// Every inter-pair similarity is exactly 0; only pair 0's positive
/// similarity (`cos θ`) varies with θ.
fn orthogonal_views(n: usize, theta: f32) -> (Tensor, Tensor) {
    let d = 2 * n;
    let mut a = vec![0.0f32; n * d];
    let mut b = vec![0.0f32; n * d];
    for i in 0..n {
        a[i * d + 2 * i] = 1.0;
        b[i * d + 2 * i + 1] = 1.0;
    }
    b[1] = 0.0;
    b[0] = theta.cos();
    b[1] = theta.sin();
    (
        Tensor::from_vec(a, &[n, d]).unwrap(),
        Tensor::from_vec(b, &[n, d]).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn loss_is_invariant_to_pair_order(
        n in 2usize..=6,
        d in 3usize..=8,
        seed in 0usize..1000,
        temp in 0.1f32..1.0,
    ) {
        // Deterministic fill keyed by `seed` so the permuted and original
        // batches share data exactly.
        let data_a: Vec<f32> = (0..n * d)
            .map(|i| (((i * 31 + seed * 17) % 97) as f32 / 48.5) - 1.0)
            .collect();
        let data_b: Vec<f32> = (0..n * d)
            .map(|i| (((i * 53 + seed * 29) % 89) as f32 / 44.5) - 1.0)
            .collect();
        // Permutation: rotate by `seed % n`, then reverse.
        let mut perm: Vec<usize> = (0..n).map(|i| (i + seed) % n).collect();
        perm.reverse();

        let a = Tensor::from_vec(data_a.clone(), &[n, d]).unwrap();
        let b = Tensor::from_vec(data_b.clone(), &[n, d]).unwrap();
        let ap = Tensor::from_vec(permute_rows(&data_a, &perm, d), &[n, d]).unwrap();
        let bp = Tensor::from_vec(permute_rows(&data_b, &perm, d), &[n, d]).unwrap();

        let orig = nt_xent(&a, &b, temp).unwrap();
        let perm_loss = nt_xent(&ap, &bp, temp).unwrap();
        prop_assert!(
            (orig.loss - perm_loss.loss).abs() <= 1e-4 * orig.loss.abs().max(1.0),
            "loss changed under pair permutation: {} vs {}",
            orig.loss,
            perm_loss.loss
        );
    }

    #[test]
    fn loss_strictly_decreases_as_positive_similarity_rises(
        n in 2usize..=6,
        theta_low in 0.05f32..0.7,
        gap in 0.2f32..0.8,
        temp in 0.1f32..1.0,
    ) {
        // Both angles in (0, π/2): cos is strictly decreasing there, so
        // theta_low has the HIGHER positive similarity.
        let theta_high = theta_low + gap;
        let (a_lo, b_lo) = orthogonal_views(n, theta_low);
        let (a_hi, b_hi) = orthogonal_views(n, theta_high);
        let closer = nt_xent(&a_lo, &b_lo, temp).unwrap().loss;
        let farther = nt_xent(&a_hi, &b_hi, temp).unwrap().loss;
        prop_assert!(
            closer + 1e-6 < farther,
            "raising pair-0 similarity (cos {theta_low} > cos {theta_high}) \
             must strictly lower the loss: {closer} vs {farther}"
        );
    }

    #[test]
    fn loss_and_grads_finite_across_temperature_range(
        n in 2usize..=5,
        d in 2usize..=8,
        data_a in proptest::collection::vec(-3.0f32..3.0, 40),
        data_b in proptest::collection::vec(-3.0f32..3.0, 40),
        temp in 0.05f32..=1.0,
    ) {
        let a = Tensor::from_vec(data_a[..n * d].to_vec(), &[n, d]).unwrap();
        let b = Tensor::from_vec(data_b[..n * d].to_vec(), &[n, d]).unwrap();
        let out = nt_xent(&a, &b, temp).unwrap();
        prop_assert!(out.loss.is_finite(), "loss not finite at temp {temp}");
        prop_assert!(
            out.grad_a.as_slice().iter().all(|v| v.is_finite()),
            "grad_a not finite at temp {temp}"
        );
        prop_assert!(
            out.grad_b.as_slice().iter().all(|v| v.is_finite()),
            "grad_b not finite at temp {temp}"
        );
    }
}
