//! Epoch-boundary resume edge cases (ISSUE 9 satellite). The resume
//! audit found no bug here — these tests pin the analyzed behavior so a
//! refactor cannot introduce one:
//!
//! - `train_until(ds, e)` when `epochs_done == e` already is a no-op:
//!   no step runs, no history row is appended, no RNG advances. A
//!   supervisor that re-issues the segment command after a kill that
//!   landed exactly on the checkpoint save must not double-train.
//! - Loading a checkpoint saved at the *final* epoch and calling
//!   `train()` is likewise a no-op (the run is already complete), and
//!   the loaded trainer's history equals the saver's bit for bit — one
//!   row per epoch, never a duplicated boundary row.
//! - `stop_epoch` past `cfg.epochs` clamps instead of over-training.

use cq_core::{Pipeline, PretrainConfig, SimclrTrainer};
use cq_data::{Dataset, DatasetConfig};
use cq_models::{Arch, Encoder, EncoderConfig};
use cq_quant::PrecisionSet;

fn trainer() -> SimclrTrainer {
    let enc = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8), 7).unwrap();
    let cfg = PretrainConfig {
        pipeline: Pipeline::CqA,
        precision_set: Some(PrecisionSet::range(6, 16).unwrap()),
        epochs: 2,
        batch_size: 8,
        lr: 0.02,
        seed: 7,
        ..Default::default()
    };
    SimclrTrainer::new(enc, cfg).unwrap()
}

fn dataset() -> Dataset {
    // 16 train images / batch 8 = exactly 2 steps per epoch.
    Dataset::generate(&DatasetConfig::cifarlike().with_sizes(16, 8)).0
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn train_until_at_the_current_boundary_is_a_noop() {
    let ds = dataset();
    let mut t = trainer();
    t.train_until(&ds, 1).unwrap();
    assert_eq!(t.epochs_done(), 1);
    assert_eq!(t.history().epoch_losses.len(), 1);
    let steps = t.history().steps;
    let params = t.encoder().params().clone();
    let history = bits32(&t.history().epoch_losses);

    // Re-issuing the same segment command must change nothing: not the
    // history length (no double-appended boundary row), not a single
    // parameter bit, not the step counter.
    t.train_until(&ds, 1).unwrap();
    assert_eq!(t.epochs_done(), 1);
    assert_eq!(t.history().epoch_losses.len(), 1, "boundary row duplicated");
    assert_eq!(t.history().steps, steps);
    assert_eq!(bits32(&t.history().epoch_losses), history);
    assert!(*t.encoder().params() == params, "no-op mutated parameters");

    // ...and the run still completes correctly afterwards.
    t.train(&ds).unwrap();
    assert_eq!(t.epochs_done(), 2);
    assert_eq!(t.history().epoch_losses.len(), 2);
}

#[test]
fn resuming_a_completed_run_does_not_retrain() {
    let ds = dataset();
    let mut done = trainer();
    done.train(&ds).unwrap();
    assert_eq!(done.epochs_done(), 2);
    let mut ckpt = Vec::new();
    done.save_checkpoint(&mut ckpt).unwrap();

    let mut resumed = trainer();
    resumed.load_checkpoint(ckpt.as_slice()).unwrap();
    assert_eq!(resumed.epochs_done(), 2);
    resumed.train(&ds).unwrap();

    // Already complete: exactly one history row per epoch, all of them
    // bitwise equal to the saver's, and identical final parameters.
    assert_eq!(resumed.history().epoch_losses.len(), 2);
    assert_eq!(
        bits32(&resumed.history().epoch_losses),
        bits32(&done.history().epoch_losses)
    );
    assert_eq!(resumed.history().steps, done.history().steps);
    assert!(*resumed.encoder().params() == *done.encoder().params());
}

#[test]
fn stop_epoch_clamps_to_configured_epochs() {
    let ds = dataset();
    let mut t = trainer();
    t.train_until(&ds, 99).unwrap();
    assert_eq!(t.epochs_done(), 2, "stop_epoch must clamp to cfg.epochs");
    assert_eq!(t.history().epoch_losses.len(), 2);
}
