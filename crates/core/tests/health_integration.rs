//! End-to-end tests for the training-health monitor (ISSUE 3 satellite):
//! seeded unhealthy runs must trip the detectors, aborting under
//! `CQ_OBS_HEALTH=abort` semantics while finishing under `warn`.
//!
//! A note on which detector catches LR divergence: with the golden-trace
//! configuration at LR ×100 (and up to ×10000) the loss never goes
//! non-finite, because NT-Xent operates on *normalized* projections — a
//! huge weight blow-up bounds the loss and *shrinks* the gradients
//! instead of exploding them. The observable symptom of the divergence
//! is representation collapse (feature std drops through the floor
//! within one epoch), so it is the collapse probe that aborts the run.
//! The NaN sentinel is exercised by poisoning a weight directly, and the
//! gradient-anomaly detector through the real `cq_obs::metric` path with
//! a spiked norm series.
//!
//! The health monitor is process-global, so every test serialises on one
//! mutex and installs/uninstalls its own engine. No sink is installed:
//! the monitor is fed directly by `cq_obs::metric`, which is exactly the
//! "health works without a sink" contract these tests also pin down.

use std::sync::{Mutex, MutexGuard};

use cq_core::{Pipeline, PretrainConfig, SimclrTrainer};
use cq_data::{Dataset, DatasetConfig};
use cq_models::{Arch, Encoder, EncoderConfig};
use cq_nn::NnError;
use cq_obs::health::{self, HealthConfig, HealthEngine, HealthPolicy, Verdict};
use cq_quant::PrecisionSet;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// The golden-trace encoder/config (see `golden_trace.rs`), with the
/// learning rate scaled by `lr_mult` and `epochs` epochs over the same
/// 24-image dataset (3 steps per epoch).
fn trainer(pipeline: Pipeline, lr_mult: f32, epochs: usize) -> (SimclrTrainer, Dataset) {
    let encoder = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8), 7)
        .expect("encoder construction");
    let cfg = PretrainConfig {
        pipeline,
        precision_set: pipeline
            .needs_precisions()
            .then(|| PrecisionSet::range(6, 16).expect("valid range")),
        epochs,
        batch_size: 8,
        lr: 0.02 * lr_mult,
        seed: 7,
        ..Default::default()
    };
    let (train, _test) = Dataset::generate(&DatasetConfig::cifarlike().with_sizes(24, 8));
    let t = SimclrTrainer::new(encoder, cfg).expect("trainer construction");
    (t, train)
}

/// Runs the divergent (LR ×100) golden-trace config under `policy` and
/// returns the train result plus the engine state at the end.
fn run_divergent(policy: HealthPolicy) -> (Result<(), NnError>, HealthEngine) {
    let (mut t, data) = trainer(Pipeline::CqA, 100.0, 2);
    health::install(policy, HealthConfig::default());
    let result = t.train(&data);
    let engine = health::uninstall().expect("engine was installed");
    (result, engine)
}

#[test]
fn divergent_run_aborts_under_abort_policy() {
    let _g = serial();
    let (result, engine) = run_divergent(HealthPolicy::Abort);
    match result {
        Err(NnError::Health(msg)) => {
            assert!(
                msg.contains("collapse_probe"),
                "abort message should name the detector that fired: {msg}"
            );
        }
        other => panic!("divergent run must abort with NnError::Health, got {other:?}"),
    }
    assert_eq!(engine.worst(), Verdict::Critical);
    assert_eq!(
        engine.worst_of("collapse_probe"),
        Verdict::Critical,
        "LR divergence reads as collapse here (see module docs): {:?}",
        engine.log()
    );
    // Uninstall cleared the latch: later runs are unaffected.
    assert!(health::abort_requested().is_none());
}

#[test]
fn divergent_run_finishes_under_warn_policy() {
    let _g = serial();
    let (result, engine) = run_divergent(HealthPolicy::Warn);
    assert!(
        result.is_ok(),
        "warn policy must not abort training: {result:?}"
    );
    // Same divergence, same detectors — only the policy differs.
    assert_eq!(engine.worst(), Verdict::Critical, "{:?}", engine.log());
    assert!(health::abort_requested().is_none());
}

#[test]
fn divergent_run_is_invisible_when_monitor_off() {
    let _g = serial();
    health::uninstall();
    let (mut t, data) = trainer(Pipeline::CqA, 100.0, 1);
    assert!(t.train(&data).is_ok(), "no monitor, no abort");
    assert!(health::abort_requested().is_none());
    assert_eq!(health::worst(), Verdict::Ok);
}

#[test]
fn zero_projector_trips_collapse_probe() {
    let _g = serial();
    let (mut t, data) = trainer(Pipeline::Baseline, 1.0, 1);
    // Zero every projection-head parameter: the encoder then emits
    // identical (all-zero) embeddings for every input — the canonical
    // collapsed representation.
    let proj_ids: Vec<_> = t
        .encoder()
        .params()
        .iter()
        .filter(|(_, name, _)| name.starts_with("proj"))
        .map(|(id, _, _)| id)
        .collect();
    assert!(!proj_ids.is_empty(), "projection head params not found");
    for id in proj_ids {
        t.encoder_mut()
            .params_mut()
            .get_mut(id)
            .as_mut_slice()
            .fill(0.0);
    }
    health::install(HealthPolicy::Warn, HealthConfig::default());
    let result = t.train(&data);
    let engine = health::uninstall().expect("engine was installed");
    assert!(result.is_ok(), "warn policy must not abort: {result:?}");
    assert_eq!(
        engine.worst_of("collapse_probe"),
        Verdict::Critical,
        "zero projector must read as collapsed: {:?}",
        engine.log()
    );
}

#[test]
fn nan_poisoned_weights_trip_nan_sentinel_and_abort() {
    let _g = serial();
    let (mut t, data) = trainer(Pipeline::CqA, 1.0, 1);
    // Poison one weight: every forward pass now yields a non-finite loss,
    // each step is skipped as exploded, and the sentinel sees the NaN
    // through the per-step metrics the exploded path still emits.
    let first = t
        .encoder()
        .params()
        .iter()
        .map(|(id, _, _)| id)
        .next()
        .expect("encoder has parameters");
    t.encoder_mut().params_mut().get_mut(first).as_mut_slice()[0] = f32::NAN;
    health::install(HealthPolicy::Abort, HealthConfig::default());
    let result = t.train(&data);
    let engine = health::uninstall().expect("engine was installed");
    match result {
        Err(NnError::Health(msg)) => {
            assert!(msg.contains("nan_sentinel"), "unexpected abort: {msg}");
        }
        other => panic!("NaN-poisoned run must abort, got {other:?}"),
    }
    assert_eq!(engine.worst_of("nan_sentinel"), Verdict::Critical);
}

#[test]
fn grad_norm_spike_trips_anomaly_detector_via_metric_path() {
    let _g = serial();
    health::install(HealthPolicy::Abort, HealthConfig::default());
    // A stable gradient-norm series through the production metric hook:
    // well past the EWMA warmup, no verdicts.
    for step in 0..16u64 {
        let wobble = 0.01 * (step % 3) as f64;
        cq_obs::metric(cq_obs::names::TRAIN_GRAD_NORM, step, 1.0 + wobble);
    }
    assert!(health::abort_requested().is_none());
    assert_eq!(health::worst(), Verdict::Ok);
    // A 6-orders-of-magnitude spike must read as Critical and latch the
    // abort under the abort policy.
    cq_obs::metric(cq_obs::names::TRAIN_GRAD_NORM, 16, 1.0e6);
    let msg = health::abort_requested().expect("spike must latch an abort");
    assert!(msg.contains("grad_anomaly"), "unexpected abort: {msg}");
    let engine = health::uninstall().expect("engine was installed");
    assert_eq!(engine.worst_of("grad_anomaly"), Verdict::Critical);
}
