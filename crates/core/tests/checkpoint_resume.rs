//! Checkpoint/resume exactness (ISSUE tentpole acceptance): for every
//! SimCLR pipeline plus BYOL and SimSiam, a 2-epoch run checkpointed
//! after epoch 1 and resumed into a **fresh** trainer must be bitwise
//! identical to the uninterrupted run — same per-step loss metrics, same
//! sampled quantization bit sequence, same final parameters. Corrupt,
//! truncated, wrong-version and wrong-method checkpoints must be rejected
//! with a clean `NnError` and zero partial state mutation.
//!
//! Single `#[test]`: the observability sink is process-global, so the
//! instrumented sub-runs cannot share the process with other tests that
//! train (their events would interleave).

use std::sync::Arc;

use cq_core::{ByolTrainer, Pipeline, PretrainConfig, SimclrTrainer, SimsiamTrainer};
use cq_data::{Dataset, DatasetConfig};
use cq_models::{Arch, Encoder, EncoderConfig};
use cq_nn::NnError;
use cq_obs::sink::MemorySink;
use cq_obs::Event;
use cq_quant::PrecisionSet;

fn simclr_encoder(seed: u64) -> Encoder {
    Encoder::new(
        &EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8),
        seed,
    )
    .unwrap()
}

fn byol_encoder(seed: u64) -> Encoder {
    Encoder::new(
        &EncoderConfig::new(Arch::ResNet18, 2).with_byol_proj(16, 8),
        seed,
    )
    .unwrap()
}

fn dataset() -> Dataset {
    // 24 train images / batch 8 = exactly 3 steps per epoch.
    Dataset::generate(&DatasetConfig::cifarlike().with_sizes(24, 8)).0
}

fn cfg(pipeline: Pipeline) -> PretrainConfig {
    PretrainConfig {
        pipeline,
        precision_set: pipeline
            .needs_precisions()
            .then(|| PrecisionSet::range(6, 16).unwrap()),
        epochs: 2,
        batch_size: 8,
        lr: 0.02,
        seed: 7,
        ..Default::default()
    }
}

/// Bit patterns of an `f32` slice: exact comparison that treats equal
/// NaNs as equal (epoch means are NaN when every step of an epoch
/// exploded, which SimSiam CQ-C does at this tiny scale).
fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `f` with a fresh in-memory sink installed; returns the per-step
/// loss metrics (bit patterns) and sampled bit-width sequence it
/// produced.
fn capture<F: FnOnce()>(f: F) -> (Vec<(u64, u64)>, Vec<u32>) {
    let sink = Arc::new(MemorySink::new());
    cq_obs::reset();
    cq_obs::install(sink.clone());
    f();
    cq_obs::uninstall();
    let events = sink.take();
    let losses = events
        .iter()
        .filter_map(|e| match e {
            Event::Metric { name, step, value } if *name == "train.loss" => {
                Some((*step, value.to_bits()))
            }
            _ => None,
        })
        .collect();
    let bits = events
        .iter()
        .filter_map(|e| match e {
            Event::Histogram { name, value } if *name == "quant.bits" => Some(*value as u32),
            _ => None,
        })
        .collect();
    (losses, bits)
}

/// Interrupted run: train 1 epoch, checkpoint into memory, resume in a
/// brand-new trainer (fresh encoder init, fresh RNGs — everything must
/// come from the checkpoint), finish the remaining epoch.
macro_rules! check_pipeline {
    ($name:expr, $trainer:ty, $make_enc:expr, $pipeline:expr, $final_params:expr) => {{
        let ds = dataset();
        let label = $name;

        let mut full = <$trainer>::new($make_enc(7), cfg($pipeline)).unwrap();
        let (full_losses, full_bits) = capture(|| full.train(&ds).unwrap());

        let mut ckpt = Vec::new();
        let mut resumed = <$trainer>::new($make_enc(7), cfg($pipeline)).unwrap();
        let (resumed_losses, resumed_bits) = capture(|| {
            resumed.train_until(&ds, 1).unwrap();
            resumed.save_checkpoint(&mut ckpt).unwrap();
            // Different init seed: every tensor and RNG must be restored
            // from the checkpoint for the traces to match.
            let mut fresh = <$trainer>::new($make_enc(99), cfg($pipeline)).unwrap();
            fresh.load_checkpoint(ckpt.as_slice()).unwrap();
            assert_eq!(fresh.epochs_done(), 1, "{label}: epochs_done restored");
            fresh.train(&ds).unwrap();
            resumed = fresh;
        });

        assert_eq!(
            full_losses, resumed_losses,
            "{label}: resumed loss trace must be bitwise identical"
        );
        assert_eq!(
            full_bits, resumed_bits,
            "{label}: resumed bit sequence must be bitwise identical"
        );
        assert_eq!(
            bits32(&full.history().epoch_losses),
            bits32(&resumed.history().epoch_losses),
            "{label}: history"
        );
        assert_eq!(
            full.history().exploded_steps,
            resumed.history().exploded_steps,
            "{label}: exploded-step count"
        );
        let (pf, pr) = ($final_params(&full), $final_params(&resumed));
        assert!(
            pf == pr,
            "{label}: final parameters must be bitwise identical"
        );
        ckpt
    }};
}

#[test]
fn checkpoint_resume_is_bitwise_exact_and_rejects_corruption() {
    // --- all five SimCLR pipelines ---
    let mut simclr_ckpt = Vec::new();
    for pipeline in Pipeline::all() {
        let ckpt = check_pipeline!(
            format!("simclr/{pipeline}"),
            SimclrTrainer,
            simclr_encoder,
            pipeline,
            |t: &SimclrTrainer| t.encoder().params().clone()
        );
        if pipeline == Pipeline::CqC {
            simclr_ckpt = ckpt;
        }
    }

    // --- BYOL and SimSiam (CQ-C exercises precision sampling + the BYOL
    // target network / predictor paths) ---
    let byol_ckpt = check_pipeline!(
        "byol/CQ-C".to_string(),
        ByolTrainer,
        byol_encoder,
        Pipeline::CqC,
        |t: &ByolTrainer| t.online().params().clone()
    );
    check_pipeline!(
        "simsiam/CQ-C".to_string(),
        SimsiamTrainer,
        byol_encoder,
        Pipeline::CqC,
        |t: &SimsiamTrainer| bits32(&t.history().epoch_grad_norms)
    );

    // --- corruption / mismatch rejection: clean errors, no mutation ---
    let mut victim = SimclrTrainer::new(simclr_encoder(7), cfg(Pipeline::CqC)).unwrap();
    let pristine = victim.encoder().params().clone();

    // Bad magic.
    let err = victim
        .load_checkpoint(&b"XXXXjunkjunkjunk"[..])
        .unwrap_err();
    assert!(matches!(err, NnError::Io(_)), "bad magic: {err}");

    // Unsupported version (byte 4 is the LE version field).
    let mut wrong_version = simclr_ckpt.clone();
    wrong_version[4] = 99;
    let err = victim
        .load_checkpoint(wrong_version.as_slice())
        .unwrap_err();
    assert!(matches!(err, NnError::Io(_)), "wrong version: {err}");
    assert!(err.to_string().contains("version"), "{err}");

    // Truncation at several depths (header, mid-params, tail).
    for frac in [8, 2, 1] {
        let cut = simclr_ckpt.len() - simclr_ckpt.len() / frac;
        let err = victim
            .load_checkpoint(&simclr_ckpt[..cut])
            .expect_err("truncated checkpoint must be rejected");
        // Header/tail cuts surface as Io; a cut inside a tensor payload
        // surfaces as Tensor(Io) via ParamSet::load. Both are clean.
        assert!(
            matches!(err, NnError::Io(_) | NnError::Tensor(_)),
            "truncated@{cut}: {err}"
        );
    }

    // Wrong method (a BYOL checkpoint into a SimCLR trainer).
    let err = victim.load_checkpoint(byol_ckpt.as_slice()).unwrap_err();
    assert!(matches!(err, NnError::Io(_)), "wrong method: {err}");
    assert!(err.to_string().contains("byol"), "{err}");

    // Wrong pipeline/seed vs the live config.
    let mut other_cfg = SimclrTrainer::new(simclr_encoder(7), cfg(Pipeline::CqA)).unwrap();
    assert!(other_cfg.load_checkpoint(simclr_ckpt.as_slice()).is_err());
    let mut other_seed_cfg = cfg(Pipeline::CqC);
    other_seed_cfg.seed = 8;
    let mut other_seed = SimclrTrainer::new(simclr_encoder(7), other_seed_cfg).unwrap();
    assert!(other_seed.load_checkpoint(simclr_ckpt.as_slice()).is_err());

    // After all those failures, the victim is untouched...
    assert!(
        *victim.encoder().params() == pristine,
        "failed loads must not mutate any state"
    );
    assert_eq!(victim.epochs_done(), 0);
    // ...and still accepts the valid checkpoint.
    victim.load_checkpoint(simclr_ckpt.as_slice()).unwrap();
    assert_eq!(victim.epochs_done(), 1);
}
