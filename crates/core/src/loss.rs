//! Contrastive losses with analytic gradients.
//!
//! [`nt_xent`] is SimCLR's normalized-temperature cross-entropy (the NCE
//! instantiation the paper uses per §3.4); [`byol_regression`] is BYOL's
//! normalized MSE, equal to `2 − 2·cos(p, t)` per pair.

use cq_nn::NnError;
use cq_tensor::Tensor;

/// A pairwise contrastive loss value plus gradients w.r.t. both inputs.
#[derive(Debug, Clone)]
pub struct PairLoss {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient w.r.t. the first feature batch.
    pub grad_a: Tensor,
    /// Gradient w.r.t. the second feature batch.
    pub grad_b: Tensor,
}

/// NT-Xent (SimCLR) loss between two `[N, D]` feature batches whose rows
/// are positive pairs; all other rows in the concatenated `2N` batch act
/// as negatives.
///
/// Features are L2-normalized internally; gradients are propagated through
/// the normalization.
///
/// # Errors
///
/// Returns an error if shapes disagree, `N < 2`, or `temperature <= 0`.
pub fn nt_xent(a: &Tensor, b: &Tensor, temperature: f32) -> Result<PairLoss, NnError> {
    if a.rank() != 2 || a.dims() != b.dims() {
        return Err(NnError::BadInput {
            layer: "nt_xent".into(),
            expected: "two equal [N, D] batches".into(),
            got: b.dims().to_vec(),
        });
    }
    let n = a.dims()[0];
    let d = a.dims()[1];
    if n < 2 {
        return Err(NnError::BadInput {
            layer: "nt_xent".into(),
            expected: "batch of at least 2 (needs negatives)".into(),
            got: a.dims().to_vec(),
        });
    }
    if temperature <= 0.0 {
        return Err(NnError::Param(format!(
            "temperature must be positive, got {temperature}"
        )));
    }

    // Concatenate and normalize: u[i] = z[i] / |z[i]|, rows 0..n from a,
    // n..2n from b.
    let m = 2 * n;
    let mut z = Vec::with_capacity(m * d);
    z.extend_from_slice(a.as_slice());
    z.extend_from_slice(b.as_slice());
    let z = Tensor::from_vec(z, &[m, d])?;
    let u = z.l2_normalize_rows(1e-12)?;

    // Similarity matrix s = u uᵀ / τ.
    let s = u.matmul_nt(&u)?.scale(1.0 / temperature);

    // Row-wise softmax over k != i; positives at i+n mod m.
    let mut loss = 0.0f32;
    let mut ds = vec![0.0f32; m * m]; // dL/ds
    let ss = s.as_slice();
    for i in 0..m {
        let pos = (i + n) % m;
        // log-sum-exp over k != i
        let mut mx = f32::NEG_INFINITY;
        for k in 0..m {
            if k != i {
                mx = mx.max(ss[i * m + k]);
            }
        }
        let mut denom = 0.0f32;
        for k in 0..m {
            if k != i {
                denom += (ss[i * m + k] - mx).exp();
            }
        }
        let lse = denom.ln() + mx;
        loss += lse - ss[i * m + pos];
        let coef = 1.0 / m as f32;
        for k in 0..m {
            if k != i {
                let p = (ss[i * m + k] - lse).exp();
                ds[i * m + k] = coef * (p - if k == pos { 1.0 } else { 0.0 });
            }
        }
    }
    loss /= m as f32;

    // dL/du = (ds + dsᵀ) u / τ.
    let ds = Tensor::from_vec(ds, &[m, m])?;
    let sym = ds.add(&ds.transpose()?)?;
    let du = sym.matmul(&u)?.scale(1.0 / temperature);

    // Backprop through row normalization: dz = (du - (du·u) u) / |z|.
    let mut dz = vec![0.0f32; m * d];
    let zs = z.as_slice();
    let us = u.as_slice();
    let dus = du.as_slice();
    for i in 0..m {
        let zrow = &zs[i * d..(i + 1) * d];
        let urow = &us[i * d..(i + 1) * d];
        let durow = &dus[i * d..(i + 1) * d];
        // cq-allow(det-float-accum): sequential slice-order sum, fixed by construction
        let norm = zrow.iter().map(|&v| v * v).sum::<f32>().sqrt().max(1e-12);
        let dot: f32 = durow.iter().zip(urow).map(|(&g, &uu)| g * uu).sum();
        for k in 0..d {
            dz[i * d + k] = (durow[k] - dot * urow[k]) / norm;
        }
    }
    let grad_a = Tensor::from_vec(dz[..n * d].to_vec(), &[n, d])?;
    let grad_b = Tensor::from_vec(dz[n * d..].to_vec(), &[n, d])?;
    Ok(PairLoss {
        loss,
        grad_a,
        grad_b,
    })
}

/// BYOL's regression loss between online predictions `p` and target
/// projections `t` (both `[N, D]`): mean over the batch of
/// `2 − 2·cos(p_i, t_i)`.
///
/// The gradient is returned for `p` only (`grad_b` is zero): BYOL
/// stop-gradients the target branch. For the symmetric cross-precision
/// consistency terms of CQ-C-on-BYOL, call it twice with the arguments
/// swapped.
///
/// # Errors
///
/// Returns an error if shapes disagree.
pub fn byol_regression(p: &Tensor, t: &Tensor) -> Result<PairLoss, NnError> {
    if p.rank() != 2 || p.dims() != t.dims() {
        return Err(NnError::BadInput {
            layer: "byol_regression".into(),
            expected: "two equal [N, D] batches".into(),
            got: t.dims().to_vec(),
        });
    }
    let (n, d) = (p.dims()[0], p.dims()[1]);
    let mut loss = 0.0f32;
    let mut grad = vec![0.0f32; n * d];
    let psl = p.as_slice();
    let tsl = t.as_slice();
    for i in 0..n {
        let pr = &psl[i * d..(i + 1) * d];
        let tr = &tsl[i * d..(i + 1) * d];
        // cq-allow(det-float-accum): sequential slice-order sum, fixed by construction
        let pn = pr.iter().map(|&v| v * v).sum::<f32>().sqrt().max(1e-12);
        // cq-allow(det-float-accum): sequential slice-order sum, fixed by construction
        let tn = tr.iter().map(|&v| v * v).sum::<f32>().sqrt().max(1e-12);
        let dot: f32 = pr.iter().zip(tr).map(|(&a, &b)| a * b).sum();
        let cos = dot / (pn * tn);
        loss += 2.0 - 2.0 * cos;
        // d(-2 cos)/dp = -2/(pn*tn) * (t - (dot/pn^2) p)
        let coef = -2.0 / (pn * tn * n as f32);
        for k in 0..d {
            grad[i * d + k] = coef * (tr[k] - dot / (pn * pn) * pr[k]);
        }
    }
    loss /= n as f32;
    Ok(PairLoss {
        loss,
        grad_a: Tensor::from_vec(grad, &[n, d])?,
        grad_b: Tensor::zeros(&[n, d]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rand_feats(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Tensor::randn(&[n, d], 0.0, 1.0, &mut rng)
    }

    #[test]
    fn nt_xent_lower_for_aligned_pairs() {
        let a = rand_feats(8, 16, 0);
        // identical features: positives perfectly aligned
        let aligned = nt_xent(&a, &a, 0.5).unwrap().loss;
        let random = nt_xent(&a, &rand_feats(8, 16, 1), 0.5).unwrap().loss;
        assert!(aligned < random, "{aligned} !< {random}");
    }

    #[test]
    fn nt_xent_gradient_matches_finite_difference() {
        let a = rand_feats(4, 6, 2);
        let b = rand_feats(4, 6, 3);
        let out = nt_xent(&a, &b, 0.5).unwrap();
        let eps = 1e-2;
        for idx in [0usize, 5, 11, 17, 23] {
            let mut ap = a.clone();
            ap.as_mut_slice()[idx] += eps;
            let mut am = a.clone();
            am.as_mut_slice()[idx] -= eps;
            let fd = (nt_xent(&ap, &b, 0.5).unwrap().loss - nt_xent(&am, &b, 0.5).unwrap().loss)
                / (2.0 * eps);
            let an = out.grad_a.as_slice()[idx];
            assert!((fd - an).abs() < 2e-3, "a[{idx}]: fd {fd} vs {an}");
        }
        for idx in [0usize, 7, 13, 19] {
            let mut bp = b.clone();
            bp.as_mut_slice()[idx] += eps;
            let mut bm = b.clone();
            bm.as_mut_slice()[idx] -= eps;
            let fd = (nt_xent(&a, &bp, 0.5).unwrap().loss - nt_xent(&a, &bm, 0.5).unwrap().loss)
                / (2.0 * eps);
            let an = out.grad_b.as_slice()[idx];
            assert!((fd - an).abs() < 2e-3, "b[{idx}]: fd {fd} vs {an}");
        }
    }

    #[test]
    fn nt_xent_scale_invariant_in_features() {
        // normalization makes the loss invariant to per-batch rescaling
        let a = rand_feats(6, 8, 4);
        let b = rand_feats(6, 8, 5);
        let l1 = nt_xent(&a, &b, 0.5).unwrap().loss;
        let l2 = nt_xent(&a.scale(3.0), &b.scale(0.2), 0.5).unwrap().loss;
        assert!((l1 - l2).abs() < 1e-4);
    }

    #[test]
    fn nt_xent_temperature_sharpens() {
        // at lower temperature, aligned positives yield lower loss
        let a = rand_feats(8, 16, 6);
        let hot = nt_xent(&a, &a, 1.0).unwrap().loss;
        let cold = nt_xent(&a, &a, 0.1).unwrap().loss;
        assert!(cold < hot);
    }

    #[test]
    fn nt_xent_validates_inputs() {
        let a = rand_feats(4, 8, 7);
        assert!(nt_xent(&a, &rand_feats(5, 8, 8), 0.5).is_err());
        assert!(nt_xent(&a, &a, 0.0).is_err());
        let single = rand_feats(1, 8, 9);
        assert!(nt_xent(&single, &single, 0.5).is_err());
    }

    #[test]
    fn byol_loss_zero_for_parallel_vectors() {
        let p = rand_feats(4, 8, 10);
        let out = byol_regression(&p, &p.scale(2.5)).unwrap();
        assert!(out.loss.abs() < 1e-5);
        assert!(out.grad_a.norm() < 1e-4);
    }

    #[test]
    fn byol_loss_max_for_antiparallel() {
        let p = rand_feats(4, 8, 11);
        let out = byol_regression(&p, &p.scale(-1.0)).unwrap();
        assert!((out.loss - 4.0).abs() < 1e-4);
    }

    #[test]
    fn byol_gradient_matches_finite_difference() {
        let p = rand_feats(3, 5, 12);
        let t = rand_feats(3, 5, 13);
        let out = byol_regression(&p, &t).unwrap();
        let eps = 1e-3;
        for idx in 0..15 {
            let mut pp = p.clone();
            pp.as_mut_slice()[idx] += eps;
            let mut pm = p.clone();
            pm.as_mut_slice()[idx] -= eps;
            let fd = (byol_regression(&pp, &t).unwrap().loss
                - byol_regression(&pm, &t).unwrap().loss)
                / (2.0 * eps);
            let an = out.grad_a.as_slice()[idx];
            assert!((fd - an).abs() < 1e-3, "p[{idx}]: fd {fd} vs {an}");
        }
    }

    #[test]
    fn byol_target_gradient_is_zero() {
        let p = rand_feats(3, 5, 14);
        let t = rand_feats(3, 5, 15);
        let out = byol_regression(&p, &t).unwrap();
        assert_eq!(out.grad_b.sum(), 0.0);
    }
}
