//! SimCLR trainer with the Contrastive Quant pipelines.

use cq_data::{AugmentConfig, AugmentPipeline, Dataset, TwoViewBatch, TwoViewLoader};
use cq_models::Encoder;
use cq_nn::{CosineSchedule, ForwardCtx, NnError, Sgd, SgdConfig};
use cq_quant::{Precision, QuantConfig};
use cq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{nt_xent, Pipeline, PrecisionSampling, PretrainConfig, TrainHistory};

// Steps skipped due to gradient explosion, across all trainers in the
// process; no-op unless a cq-obs sink is installed.
static EXPLODED_STEPS: cq_obs::Counter = cq_obs::Counter::new("train.exploded_steps");

/// Emits the per-step training metrics shared by the SimCLR/BYOL/SimSiam
/// trainers (no-ops without an installed sink or health monitor). Also
/// called for exploded steps — the possibly NaN/oversized values are what
/// the health sentinels need to see a divergence.
pub(crate) fn record_step_metrics(step: usize, loss: f32, norm: f32, lr: f32) {
    let step = step as u64;
    cq_obs::metric(cq_obs::names::TRAIN_LOSS, step, loss as f64);
    cq_obs::metric(cq_obs::names::TRAIN_GRAD_NORM, step, norm as f64);
    cq_obs::metric(cq_obs::names::TRAIN_LR, step, lr as f64);
}

/// Records one exploded (skipped) step.
pub(crate) fn record_exploded_step() {
    EXPLODED_STEPS.add(1);
}

/// Emits the end-of-epoch throughput metric.
pub(crate) fn record_epoch_throughput(step: usize, images: usize, elapsed: std::time::Duration) {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        cq_obs::metric(
            cq_obs::names::TRAIN_IMAGES_PER_SEC,
            step as u64,
            images as f64 / secs,
        );
    }
}

/// Surfaces a pending health abort (`CQ_OBS_HEALTH=abort` + Critical
/// verdict) as an error; trainers call this once per step and per epoch.
pub(crate) fn abort_check() -> Result<(), NnError> {
    match cq_obs::health::abort_requested() {
        Some(msg) => Err(NnError::Health(msg)),
        None => Ok(()),
    }
}

/// Mean over the finite entries of `v`, plus the count of non-finite
/// entries (the NaN placeholders skipped/exploded steps leave behind).
/// All-non-finite input yields NaN, preserving "nothing succeeded".
pub(crate) fn finite_mean(v: &[f32]) -> (f32, usize) {
    let mut sum = 0.0f64;
    let mut finite = 0usize;
    for &x in v {
        if x.is_finite() {
            sum += x as f64;
            finite += 1;
        }
    }
    let mean = if finite == 0 {
        f32::NAN
    } else {
        (sum / finite as f64) as f32
    };
    (mean, v.len() - finite)
}

/// Pushes the epoch loss/grad-norm means (finite entries only) into the
/// history and emits the non-finite step count as a metric, which the
/// health NaN sentinel watches.
pub(crate) fn record_epoch_stats(
    history: &mut TrainHistory,
    losses: &[f32],
    norms: &[f32],
    step: usize,
) {
    let (loss_mean, bad) = finite_mean(losses);
    let (norm_mean, _) = finite_mean(norms);
    cq_obs::metric(
        cq_obs::names::TRAIN_NONFINITE_STEPS,
        step as u64,
        bad as f64,
    );
    history.epoch_losses.push(loss_mean);
    history.epoch_grad_norms.push(norm_mean);
}

/// Per-epoch SSL collapse probe: one extra full-precision forward over
/// `batch`, with the embedding statistics emitted as `embed.*` metrics.
/// Skipped entirely unless a sink or the health monitor is active, so
/// plain runs pay nothing.
pub(crate) fn record_collapse_probe(
    encoder: &mut Encoder,
    batch: &TwoViewBatch,
    step: usize,
) -> Result<(), NnError> {
    if !cq_models::stats::stats_enabled() {
        return Ok(());
    }
    let _sp = cq_obs::span("train.collapse_probe");
    let ctx = ForwardCtx::eval();
    let o1 = encoder.forward(&batch.view1, &ctx)?;
    let o2 = encoder.forward(&batch.view2, &ctx)?;
    cq_models::record_embedding_stats(step as u64, &o1.projection, &o2.projection)?;
    Ok(())
}

/// Self-supervised pre-training with SimCLR's NT-Xent objective, hosting
/// every [`Pipeline`] variant of the paper.
///
/// # Example
///
/// ```no_run
/// use cq_core::{SimclrTrainer, PretrainConfig, Pipeline};
/// use cq_models::{Arch, Encoder, EncoderConfig};
/// use cq_data::{Dataset, DatasetConfig};
/// use cq_quant::PrecisionSet;
///
/// let enc = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 4).with_proj(32, 16), 0)?;
/// let cfg = PretrainConfig {
///     pipeline: Pipeline::CqC,
///     precision_set: Some(PrecisionSet::range(6, 16)?),
///     epochs: 5,
///     ..Default::default()
/// };
/// let (train, _) = Dataset::generate(&DatasetConfig::cifarlike());
/// let mut trainer = SimclrTrainer::new(enc, cfg)?;
/// trainer.train(&train)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SimclrTrainer {
    encoder: Encoder,
    cfg: PretrainConfig,
    opt: Sgd,
    loader: TwoViewLoader,
    rng: StdRng,
    history: TrainHistory,
    steps_taken: usize,
}

impl std::fmt::Debug for SimclrTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SimclrTrainer(pipeline={}, steps={})",
            self.cfg.pipeline, self.steps_taken
        )
    }
}

impl SimclrTrainer {
    /// Creates a trainer. The augmentation pipeline is chosen from the
    /// pipeline variant: [`Pipeline::CqQuant`] disables input
    /// augmentations (§4.5); everything else uses SimCLR-strength
    /// augmentations.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Param`] for an inconsistent configuration.
    pub fn new(encoder: Encoder, cfg: PretrainConfig) -> Result<Self, NnError> {
        cfg.validate().map_err(NnError::Param)?;
        let aug = if cfg.pipeline == Pipeline::CqQuant {
            AugmentConfig::none()
        } else {
            AugmentConfig::simclr()
        };
        let loader =
            TwoViewLoader::new(AugmentPipeline::new(aug), cfg.batch_size, cfg.seed ^ 0xA5A5);
        let opt = Sgd::new(
            encoder.params(),
            SgdConfig {
                lr: cfg.lr,
                momentum: cfg.momentum,
                weight_decay: cfg.weight_decay,
                nesterov: false,
            },
        );
        let rng = StdRng::seed_from_u64(cfg.seed);
        Ok(SimclrTrainer {
            encoder,
            cfg,
            opt,
            loader,
            rng,
            history: TrainHistory::default(),
            steps_taken: 0,
        })
    }

    /// The encoder being trained.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Mutable encoder access (evaluation needs `&mut` for forward).
    pub fn encoder_mut(&mut self) -> &mut Encoder {
        &mut self.encoder
    }

    /// Consumes the trainer, returning the trained encoder.
    pub fn into_encoder(self) -> Encoder {
        self.encoder
    }

    /// Training diagnostics so far.
    pub fn history(&self) -> &TrainHistory {
        &self.history
    }

    /// Runs `cfg.epochs` of pre-training over `dataset`.
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors. Gradient explosions do NOT
    /// error: the step is skipped and counted in the history (this is the
    /// behaviour the paper describes for CQ-B).
    pub fn train(&mut self, dataset: &Dataset) -> Result<(), NnError> {
        let batches_per_epoch = self.loader.batches_per_epoch(dataset);
        let total = (self.cfg.epochs * batches_per_epoch).max(1);
        let sched = CosineSchedule::new(self.cfg.lr, total, total / 20);
        for _ in 0..self.cfg.epochs {
            let epoch_start = std::time::Instant::now();
            let batches = self.loader.epoch(dataset);
            let mut losses = Vec::with_capacity(batches.len());
            let mut norms = Vec::with_capacity(batches.len());
            for batch in &batches {
                let lr = sched.lr_at(self.steps_taken);
                match self.step(batch, lr)? {
                    Some((loss, norm)) => {
                        losses.push(loss);
                        norms.push(norm);
                    }
                    // NaN placeholder keeps one slot per step; the epoch
                    // means skip it and its count becomes a metric.
                    None => {
                        losses.push(f32::NAN);
                        norms.push(f32::NAN);
                    }
                }
                self.steps_taken += 1;
            }
            crate::simclr::record_epoch_throughput(
                self.steps_taken,
                batches.len() * self.cfg.batch_size,
                epoch_start.elapsed(),
            );
            // CQ-Quant feeds identical input views (quantization is the
            // only view-maker), which makes the positive-pair probe
            // vacuous — skip it for that pipeline.
            if self.cfg.pipeline != Pipeline::CqQuant {
                if let Some(batch) = batches.first() {
                    record_collapse_probe(&mut self.encoder, batch, self.steps_taken)?;
                }
            }
            record_epoch_stats(&mut self.history, &losses, &norms, self.steps_taken);
            abort_check()?;
        }
        Ok(())
    }

    /// One optimizer step on a two-view batch. Returns `None` when the
    /// step was skipped due to gradient explosion.
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors, and [`NnError::Health`] when the
    /// health monitor has latched an abort.
    pub fn step(&mut self, batch: &TwoViewBatch, lr: f32) -> Result<Option<(f32, f32)>, NnError> {
        abort_check()?;
        let _sp = cq_obs::span("train.step");
        let mut gs = self.encoder.params().zero_grads();
        let temp = self.cfg.temperature;
        let loss = match self.cfg.pipeline {
            Pipeline::Baseline => {
                let ctx = ForwardCtx::train();
                let o1 = self.encoder.forward(&batch.view1, &ctx)?;
                let o2 = self.encoder.forward(&batch.view2, &ctx)?;
                let pl = nt_xent(&o1.projection, &o2.projection, temp)?;
                self.encoder
                    .backward_projection(&o1.trace, &pl.grad_a, &mut gs)?;
                self.encoder
                    .backward_projection(&o2.trace, &pl.grad_b, &mut gs)?;
                pl.loss
            }
            Pipeline::CqA => {
                let (q1, q2) = self.sample_pair()?;
                let o1 = self.encoder.forward(&batch.view1, &self.quant_ctx(q1))?;
                let o2 = self.encoder.forward(&batch.view2, &self.quant_ctx(q2))?;
                let pl = nt_xent(&o1.projection, &o2.projection, temp)?;
                self.encoder
                    .backward_projection(&o1.trace, &pl.grad_a, &mut gs)?;
                self.encoder
                    .backward_projection(&o2.trace, &pl.grad_b, &mut gs)?;
                pl.loss
            }
            Pipeline::CqB => {
                let (q1, q2) = self.sample_pair()?;
                let f1 = self.encoder.forward(&batch.view1, &self.quant_ctx(q1))?;
                let f2 = self.encoder.forward(&batch.view1, &self.quant_ctx(q2))?;
                let f1p = self.encoder.forward(&batch.view2, &self.quant_ctx(q1))?;
                let f2p = self.encoder.forward(&batch.view2, &self.quant_ctx(q2))?;
                let t1 = nt_xent(&f1.projection, &f1p.projection, temp)?;
                let t2 = nt_xent(&f2.projection, &f2p.projection, temp)?;
                self.encoder
                    .backward_projection(&f1.trace, &t1.grad_a, &mut gs)?;
                self.encoder
                    .backward_projection(&f1p.trace, &t1.grad_b, &mut gs)?;
                self.encoder
                    .backward_projection(&f2.trace, &t2.grad_a, &mut gs)?;
                self.encoder
                    .backward_projection(&f2p.trace, &t2.grad_b, &mut gs)?;
                t1.loss + t2.loss
            }
            Pipeline::CqC => {
                let (q1, q2) = self.sample_pair()?;
                let f1 = self.encoder.forward(&batch.view1, &self.quant_ctx(q1))?;
                let f2 = self.encoder.forward(&batch.view1, &self.quant_ctx(q2))?;
                let f1p = self.encoder.forward(&batch.view2, &self.quant_ctx(q1))?;
                let f2p = self.encoder.forward(&batch.view2, &self.quant_ctx(q2))?;
                // Eq. 9: view terms + cross-precision terms.
                let t1 = nt_xent(&f1.projection, &f1p.projection, temp)?;
                let t2 = nt_xent(&f2.projection, &f2p.projection, temp)?;
                let t3 = nt_xent(&f1.projection, &f2.projection, temp)?;
                let t4 = nt_xent(&f1p.projection, &f2p.projection, temp)?;
                // Each branch participates in two terms; sum its gradients
                // before walking the trace once.
                let d_f1 = t1.grad_a.add(&t3.grad_a)?;
                let d_f2 = t2.grad_a.add(&t3.grad_b)?;
                let d_f1p = t1.grad_b.add(&t4.grad_a)?;
                let d_f2p = t2.grad_b.add(&t4.grad_b)?;
                self.encoder
                    .backward_projection(&f1.trace, &d_f1, &mut gs)?;
                self.encoder
                    .backward_projection(&f2.trace, &d_f2, &mut gs)?;
                self.encoder
                    .backward_projection(&f1p.trace, &d_f1p, &mut gs)?;
                self.encoder
                    .backward_projection(&f2p.trace, &d_f2p, &mut gs)?;
                t1.loss + t2.loss + t3.loss + t4.loss
            }
            Pipeline::CqQuant => {
                // No input augmentation (the loader already produced
                // identical views); quantization is the only view-maker.
                let (q1, q2) = self.sample_pair()?;
                let f1 = self.encoder.forward(&batch.view1, &self.quant_ctx(q1))?;
                let f2 = self.encoder.forward(&batch.view1, &self.quant_ctx(q2))?;
                let pl = nt_xent(&f1.projection, &f2.projection, temp)?;
                self.encoder
                    .backward_projection(&f1.trace, &pl.grad_a, &mut gs)?;
                self.encoder
                    .backward_projection(&f2.trace, &pl.grad_b, &mut gs)?;
                pl.loss
            }
            Pipeline::NoiseA => {
                // CQ-A's structure with Gaussian weight noise as the
                // model-side augmentation (the paper's future-work
                // direction, §4.2).
                let (s1, s2) = (self.rng.gen::<u64>(), self.rng.gen::<u64>());
                let o1 = self.encoder.forward(&batch.view1, &self.noise_ctx(s1))?;
                let o2 = self.encoder.forward(&batch.view2, &self.noise_ctx(s2))?;
                let pl = nt_xent(&o1.projection, &o2.projection, temp)?;
                self.encoder
                    .backward_projection(&o1.trace, &pl.grad_a, &mut gs)?;
                self.encoder
                    .backward_projection(&o2.trace, &pl.grad_b, &mut gs)?;
                pl.loss
            }
            Pipeline::NoiseC => {
                // CQ-C's structure with Gaussian weight noise.
                let (s1, s2) = (self.rng.gen::<u64>(), self.rng.gen::<u64>());
                let f1 = self.encoder.forward(&batch.view1, &self.noise_ctx(s1))?;
                let f2 = self.encoder.forward(&batch.view1, &self.noise_ctx(s2))?;
                let f1p = self.encoder.forward(&batch.view2, &self.noise_ctx(s1))?;
                let f2p = self.encoder.forward(&batch.view2, &self.noise_ctx(s2))?;
                let t1 = nt_xent(&f1.projection, &f1p.projection, temp)?;
                let t2 = nt_xent(&f2.projection, &f2p.projection, temp)?;
                let t3 = nt_xent(&f1.projection, &f2.projection, temp)?;
                let t4 = nt_xent(&f1p.projection, &f2p.projection, temp)?;
                let d_f1 = t1.grad_a.add(&t3.grad_a)?;
                let d_f2 = t2.grad_a.add(&t3.grad_b)?;
                let d_f1p = t1.grad_b.add(&t4.grad_a)?;
                let d_f2p = t2.grad_b.add(&t4.grad_b)?;
                self.encoder
                    .backward_projection(&f1.trace, &d_f1, &mut gs)?;
                self.encoder
                    .backward_projection(&f2.trace, &d_f2, &mut gs)?;
                self.encoder
                    .backward_projection(&f1p.trace, &d_f1p, &mut gs)?;
                self.encoder
                    .backward_projection(&f2p.trace, &d_f2p, &mut gs)?;
                t1.loss + t2.loss + t3.loss + t4.loss
            }
        };
        let norm = gs.global_norm();
        if !loss.is_finite() || !gs.is_finite() || norm > self.cfg.explosion_threshold {
            self.history.exploded_steps += 1;
            record_exploded_step();
            // Report the divergent values before skipping — this is what
            // lets the health sentinels see the explosion.
            record_step_metrics(self.steps_taken, loss, norm, lr);
            return Ok(None);
        }
        self.opt.step(self.encoder.params_mut(), &gs, lr)?;
        self.history.steps += 1;
        record_step_metrics(self.steps_taken, loss, norm, lr);
        Ok(Some((loss, norm)))
    }

    fn sample_pair(&mut self) -> Result<(Precision, Precision), NnError> {
        let set = self.cfg.precision_set.as_ref().ok_or_else(|| {
            NnError::Param(format!(
                "pipeline {} requires a precision set",
                self.cfg.pipeline
            ))
        })?;
        Ok(match self.cfg.sampling {
            PrecisionSampling::Uniform => set.sample_pair(&mut self.rng),
            PrecisionSampling::Cyclic => {
                let bits = set.as_slice();
                let n = bits.len();
                let t = self.steps_taken;
                (
                    Precision::Bits(bits[t % n]),
                    Precision::Bits(bits[(t + n / 2) % n]),
                )
            }
        })
    }

    fn quant_ctx(&self, p: Precision) -> ForwardCtx {
        ForwardCtx::train().with_quant(QuantConfig::uniform(p).with_mode(self.cfg.quant_mode))
    }

    fn noise_ctx(&self, seed: u64) -> ForwardCtx {
        ForwardCtx::train().with_weight_noise(self.cfg.noise_std, seed)
    }
}

/// Extracts all features of a dataset with the given encoder (eval mode,
/// full precision) — shared by the evaluation harness and examples.
///
/// # Errors
///
/// Propagates layer errors.
pub fn extract_features(
    encoder: &mut Encoder,
    dataset: &Dataset,
    batch_size: usize,
) -> Result<(Tensor, Vec<usize>), NnError> {
    let mut feats: Vec<f32> = Vec::with_capacity(dataset.len() * encoder.feat_dim());
    let mut labels = Vec::with_capacity(dataset.len());
    let ctx = ForwardCtx::eval();
    let mut i = 0;
    while i < dataset.len() {
        let end = (i + batch_size).min(dataset.len());
        let idxs: Vec<usize> = (i..end).collect();
        let (x, l) = dataset.batch(&idxs);
        let h = encoder.features(&x, &ctx)?;
        feats.extend_from_slice(h.as_slice());
        labels.extend(l);
        i = end;
    }
    let d = encoder.feat_dim();
    Ok((Tensor::from_vec(feats, &[dataset.len(), d])?, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::DatasetConfig;
    use cq_models::{Arch, EncoderConfig};
    use cq_quant::PrecisionSet;

    fn tiny_encoder(seed: u64) -> Encoder {
        Encoder::new(
            &EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8),
            seed,
        )
        .unwrap()
    }

    fn tiny_dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::cifarlike().with_sizes(32, 8)).0
    }

    fn cfg(pipeline: Pipeline) -> PretrainConfig {
        PretrainConfig {
            pipeline,
            precision_set: pipeline
                .needs_precisions()
                .then(|| PrecisionSet::range(6, 16).unwrap()),
            epochs: 1,
            batch_size: 8,
            lr: 0.02,
            ..Default::default()
        }
    }

    #[test]
    fn every_pipeline_trains_one_epoch() {
        let ds = tiny_dataset();
        for pipeline in Pipeline::all() {
            let mut t = SimclrTrainer::new(tiny_encoder(1), cfg(pipeline)).unwrap();
            t.train(&ds).unwrap();
            let h = t.history();
            assert_eq!(h.epoch_losses.len(), 1, "{pipeline}");
            assert!(h.final_loss().unwrap().is_finite(), "{pipeline}");
            assert!(h.steps > 0, "{pipeline}");
        }
    }

    #[test]
    fn loss_decreases_over_training() {
        let ds = tiny_dataset();
        let mut c = cfg(Pipeline::Baseline);
        c.epochs = 6;
        let mut t = SimclrTrainer::new(tiny_encoder(2), c).unwrap();
        t.train(&ds).unwrap();
        let l = &t.history().epoch_losses;
        assert!(
            l.last().unwrap() < l.first().unwrap(),
            "loss should decrease: {l:?}"
        );
    }

    #[test]
    fn quantized_pipeline_requires_precision_set() {
        let mut c = cfg(Pipeline::CqA);
        c.precision_set = None;
        assert!(SimclrTrainer::new(tiny_encoder(3), c).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let ds = tiny_dataset();
        let run = || {
            let mut t = SimclrTrainer::new(tiny_encoder(4), cfg(Pipeline::CqC)).unwrap();
            t.train(&ds).unwrap();
            t.history().final_loss().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn noise_pipelines_train() {
        let ds = tiny_dataset();
        for pipeline in Pipeline::extensions() {
            let c = PretrainConfig {
                pipeline,
                precision_set: None,
                noise_std: 0.05,
                epochs: 1,
                batch_size: 8,
                lr: 0.02,
                ..Default::default()
            };
            let mut t = SimclrTrainer::new(tiny_encoder(11), c).unwrap();
            t.train(&ds).unwrap();
            assert!(t.history().final_loss().unwrap().is_finite(), "{pipeline}");
        }
    }

    #[test]
    fn cyclic_sampling_trains_and_differs_from_uniform() {
        let ds = tiny_dataset();
        let run = |sampling| {
            let c = PretrainConfig {
                sampling,
                ..cfg(Pipeline::CqC)
            };
            let mut t = SimclrTrainer::new(tiny_encoder(12), c).unwrap();
            t.train(&ds).unwrap();
            t.history().final_loss().unwrap()
        };
        let u = run(crate::PrecisionSampling::Uniform);
        let cy = run(crate::PrecisionSampling::Cyclic);
        assert!(u.is_finite() && cy.is_finite());
        assert_ne!(u, cy, "different sampling schedules should diverge");
    }

    #[test]
    fn floor_mode_trains() {
        let ds = tiny_dataset();
        let c = PretrainConfig {
            quant_mode: cq_quant::QuantMode::Floor,
            ..cfg(Pipeline::CqC)
        };
        let mut t = SimclrTrainer::new(tiny_encoder(13), c).unwrap();
        t.train(&ds).unwrap();
        assert!(t.history().final_loss().unwrap().is_finite());
    }

    #[test]
    fn extract_features_shapes() {
        let ds = tiny_dataset();
        let mut enc = tiny_encoder(5);
        let (f, labels) = extract_features(&mut enc, &ds, 8).unwrap();
        assert_eq!(f.dims(), &[32, enc.feat_dim()]);
        assert_eq!(labels.len(), 32);
        assert!(f.is_finite());
    }
}
