//! SimCLR trainer with the Contrastive Quant pipelines, implemented as an
//! [`SslMethod`] driven by the shared [`TrainLoop`] engine.

use std::io::{Read, Write};

use cq_data::{AugmentConfig, AugmentPipeline, Dataset, TwoViewBatch, TwoViewLoader};
use cq_models::Encoder;
use cq_nn::{ForwardCtx, GradSet, NnError, ParamSet};
use cq_tensor::Tensor;

use crate::engine::{SslMethod, StepCtx, TrainLoop};
use crate::{nt_xent, Pipeline, PretrainConfig, TrainHistory};

/// SimCLR's per-step loss semantics: NT-Xent over the pipeline-specific
/// combination of quantized/noisy forward branches.
struct SimclrMethod {
    encoder: Encoder,
}

impl SslMethod for SimclrMethod {
    const TAG: u8 = 0;
    const NAME: &'static str = "simclr";

    fn params(&self) -> &ParamSet {
        self.encoder.params()
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        self.encoder.params_mut()
    }

    fn compute_loss(
        &mut self,
        batch: &TwoViewBatch,
        ctx: &mut StepCtx<'_>,
        gs: &mut GradSet,
    ) -> Result<f32, NnError> {
        let pipeline = ctx.cfg().pipeline;
        let temp = ctx.cfg().temperature;
        let loss = match pipeline {
            Pipeline::Baseline => {
                let fctx = ForwardCtx::train();
                let o1 = self.encoder.forward(&batch.view1, &fctx)?;
                let o2 = self.encoder.forward(&batch.view2, &fctx)?;
                let pl = nt_xent(&o1.projection, &o2.projection, temp)?;
                self.encoder
                    .backward_projection(&o1.trace, &pl.grad_a, gs)?;
                self.encoder
                    .backward_projection(&o2.trace, &pl.grad_b, gs)?;
                pl.loss
            }
            Pipeline::CqA => {
                let (q1, q2) = ctx.sample_pair()?;
                let o1 = self.encoder.forward(&batch.view1, &ctx.quant_ctx(q1))?;
                let o2 = self.encoder.forward(&batch.view2, &ctx.quant_ctx(q2))?;
                let pl = nt_xent(&o1.projection, &o2.projection, temp)?;
                self.encoder
                    .backward_projection(&o1.trace, &pl.grad_a, gs)?;
                self.encoder
                    .backward_projection(&o2.trace, &pl.grad_b, gs)?;
                pl.loss
            }
            Pipeline::CqB => {
                let (q1, q2) = ctx.sample_pair()?;
                let f1 = self.encoder.forward(&batch.view1, &ctx.quant_ctx(q1))?;
                let f2 = self.encoder.forward(&batch.view1, &ctx.quant_ctx(q2))?;
                let f1p = self.encoder.forward(&batch.view2, &ctx.quant_ctx(q1))?;
                let f2p = self.encoder.forward(&batch.view2, &ctx.quant_ctx(q2))?;
                let t1 = nt_xent(&f1.projection, &f1p.projection, temp)?;
                let t2 = nt_xent(&f2.projection, &f2p.projection, temp)?;
                self.encoder
                    .backward_projection(&f1.trace, &t1.grad_a, gs)?;
                self.encoder
                    .backward_projection(&f1p.trace, &t1.grad_b, gs)?;
                self.encoder
                    .backward_projection(&f2.trace, &t2.grad_a, gs)?;
                self.encoder
                    .backward_projection(&f2p.trace, &t2.grad_b, gs)?;
                t1.loss + t2.loss
            }
            Pipeline::CqC => {
                let (q1, q2) = ctx.sample_pair()?;
                let f1 = self.encoder.forward(&batch.view1, &ctx.quant_ctx(q1))?;
                let f2 = self.encoder.forward(&batch.view1, &ctx.quant_ctx(q2))?;
                let f1p = self.encoder.forward(&batch.view2, &ctx.quant_ctx(q1))?;
                let f2p = self.encoder.forward(&batch.view2, &ctx.quant_ctx(q2))?;
                // Eq. 9: view terms + cross-precision terms.
                let t1 = nt_xent(&f1.projection, &f1p.projection, temp)?;
                let t2 = nt_xent(&f2.projection, &f2p.projection, temp)?;
                let t3 = nt_xent(&f1.projection, &f2.projection, temp)?;
                let t4 = nt_xent(&f1p.projection, &f2p.projection, temp)?;
                // Each branch participates in two terms; sum its gradients
                // before walking the trace once.
                let d_f1 = t1.grad_a.add(&t3.grad_a)?;
                let d_f2 = t2.grad_a.add(&t3.grad_b)?;
                let d_f1p = t1.grad_b.add(&t4.grad_a)?;
                let d_f2p = t2.grad_b.add(&t4.grad_b)?;
                self.encoder.backward_projection(&f1.trace, &d_f1, gs)?;
                self.encoder.backward_projection(&f2.trace, &d_f2, gs)?;
                self.encoder.backward_projection(&f1p.trace, &d_f1p, gs)?;
                self.encoder.backward_projection(&f2p.trace, &d_f2p, gs)?;
                t1.loss + t2.loss + t3.loss + t4.loss
            }
            Pipeline::CqQuant => {
                // No input augmentation (the loader already produced
                // identical views); quantization is the only view-maker.
                let (q1, q2) = ctx.sample_pair()?;
                let f1 = self.encoder.forward(&batch.view1, &ctx.quant_ctx(q1))?;
                let f2 = self.encoder.forward(&batch.view1, &ctx.quant_ctx(q2))?;
                let pl = nt_xent(&f1.projection, &f2.projection, temp)?;
                self.encoder
                    .backward_projection(&f1.trace, &pl.grad_a, gs)?;
                self.encoder
                    .backward_projection(&f2.trace, &pl.grad_b, gs)?;
                pl.loss
            }
            Pipeline::NoiseA => {
                // CQ-A's structure with Gaussian weight noise as the
                // model-side augmentation (the paper's future-work
                // direction, §4.2).
                let (s1, s2) = (ctx.noise_seed(), ctx.noise_seed());
                let o1 = self.encoder.forward(&batch.view1, &ctx.noise_ctx(s1))?;
                let o2 = self.encoder.forward(&batch.view2, &ctx.noise_ctx(s2))?;
                let pl = nt_xent(&o1.projection, &o2.projection, temp)?;
                self.encoder
                    .backward_projection(&o1.trace, &pl.grad_a, gs)?;
                self.encoder
                    .backward_projection(&o2.trace, &pl.grad_b, gs)?;
                pl.loss
            }
            Pipeline::NoiseC => {
                // CQ-C's structure with Gaussian weight noise.
                let (s1, s2) = (ctx.noise_seed(), ctx.noise_seed());
                let f1 = self.encoder.forward(&batch.view1, &ctx.noise_ctx(s1))?;
                let f2 = self.encoder.forward(&batch.view1, &ctx.noise_ctx(s2))?;
                let f1p = self.encoder.forward(&batch.view2, &ctx.noise_ctx(s1))?;
                let f2p = self.encoder.forward(&batch.view2, &ctx.noise_ctx(s2))?;
                let t1 = nt_xent(&f1.projection, &f1p.projection, temp)?;
                let t2 = nt_xent(&f2.projection, &f2p.projection, temp)?;
                let t3 = nt_xent(&f1.projection, &f2.projection, temp)?;
                let t4 = nt_xent(&f1p.projection, &f2p.projection, temp)?;
                let d_f1 = t1.grad_a.add(&t3.grad_a)?;
                let d_f2 = t2.grad_a.add(&t3.grad_b)?;
                let d_f1p = t1.grad_b.add(&t4.grad_a)?;
                let d_f2p = t2.grad_b.add(&t4.grad_b)?;
                self.encoder.backward_projection(&f1.trace, &d_f1, gs)?;
                self.encoder.backward_projection(&f2.trace, &d_f2, gs)?;
                self.encoder.backward_projection(&f1p.trace, &d_f1p, gs)?;
                self.encoder.backward_projection(&f2p.trace, &d_f2p, gs)?;
                t1.loss + t2.loss + t3.loss + t4.loss
            }
        };
        Ok(loss)
    }

    fn probe_encoder(&mut self, cfg: &PretrainConfig) -> Option<&mut Encoder> {
        // CQ-Quant feeds identical input views (quantization is the only
        // view-maker), which makes the positive-pair probe vacuous — skip
        // it for that pipeline.
        (cfg.pipeline != Pipeline::CqQuant).then_some(&mut self.encoder)
    }

    fn state_tensors(&self) -> Vec<&Tensor> {
        self.encoder.state_tensors()
    }

    fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        self.encoder.state_tensors_mut()
    }
}

/// Self-supervised pre-training with SimCLR's NT-Xent objective, hosting
/// every [`Pipeline`] variant of the paper.
///
/// # Example
///
/// ```no_run
/// use cq_core::{SimclrTrainer, PretrainConfig, Pipeline};
/// use cq_models::{Arch, Encoder, EncoderConfig};
/// use cq_data::{Dataset, DatasetConfig};
/// use cq_quant::PrecisionSet;
///
/// let enc = Encoder::new(&EncoderConfig::new(Arch::ResNet18, 4).with_proj(32, 16), 0)?;
/// let cfg = PretrainConfig {
///     pipeline: Pipeline::CqC,
///     precision_set: Some(PrecisionSet::range(6, 16)?),
///     epochs: 5,
///     ..Default::default()
/// };
/// let (train, _) = Dataset::generate(&DatasetConfig::cifarlike());
/// let mut trainer = SimclrTrainer::new(enc, cfg)?;
/// trainer.train(&train)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SimclrTrainer {
    inner: TrainLoop<SimclrMethod>,
}

impl std::fmt::Debug for SimclrTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SimclrTrainer(pipeline={}, steps={})",
            self.inner.cfg().pipeline,
            self.inner.steps_taken()
        )
    }
}

impl SimclrTrainer {
    /// Creates a trainer. The augmentation pipeline is chosen from the
    /// pipeline variant: [`Pipeline::CqQuant`] disables input
    /// augmentations (§4.5); everything else uses SimCLR-strength
    /// augmentations.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Param`] for an inconsistent configuration.
    pub fn new(encoder: Encoder, cfg: PretrainConfig) -> Result<Self, NnError> {
        cfg.validate().map_err(NnError::Param)?;
        let aug = if cfg.pipeline == Pipeline::CqQuant {
            AugmentConfig::none()
        } else {
            AugmentConfig::simclr()
        };
        let loader =
            TwoViewLoader::new(AugmentPipeline::new(aug), cfg.batch_size, cfg.seed ^ 0xA5A5);
        let inner = TrainLoop::new(SimclrMethod { encoder }, cfg, loader)?;
        Ok(SimclrTrainer { inner })
    }

    /// The encoder being trained.
    pub fn encoder(&self) -> &Encoder {
        &self.inner.method().encoder
    }

    /// Mutable encoder access (evaluation needs `&mut` for forward).
    pub fn encoder_mut(&mut self) -> &mut Encoder {
        &mut self.inner.method_mut().encoder
    }

    /// Consumes the trainer, returning the trained encoder.
    pub fn into_encoder(self) -> Encoder {
        self.inner.into_method().encoder
    }

    /// Training diagnostics so far.
    pub fn history(&self) -> &TrainHistory {
        self.inner.history()
    }

    /// Epochs completed so far (survives checkpoint/resume).
    pub fn epochs_done(&self) -> usize {
        self.inner.epochs_done()
    }

    /// Runs `cfg.epochs` of pre-training over `dataset`.
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors. Gradient explosions do NOT
    /// error: the step is skipped and counted in the history (this is the
    /// behaviour the paper describes for CQ-B).
    pub fn train(&mut self, dataset: &Dataset) -> Result<(), NnError> {
        self.inner.train(dataset)
    }

    /// Runs pre-training until `stop_epoch` epochs are complete (clamped
    /// to `cfg.epochs`); the LR schedule still spans the full run, so a
    /// checkpoint written here and resumed matches an uninterrupted run.
    ///
    /// # Errors
    ///
    /// See [`train`](SimclrTrainer::train).
    pub fn train_until(&mut self, dataset: &Dataset, stop_epoch: usize) -> Result<(), NnError> {
        self.inner.train_until(dataset, stop_epoch)
    }

    /// One optimizer step on a two-view batch. Returns `None` when the
    /// step was skipped due to gradient explosion.
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors, and [`NnError::Health`] when the
    /// health monitor has latched an abort.
    pub fn step(&mut self, batch: &TwoViewBatch, lr: f32) -> Result<Option<(f32, f32)>, NnError> {
        self.inner.step(batch, lr)
    }

    /// Writes a checkpoint from which [`load_checkpoint`] resumes
    /// bitwise-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] on write failure.
    ///
    /// [`load_checkpoint`]: SimclrTrainer::load_checkpoint
    pub fn save_checkpoint<W: Write>(&self, w: W) -> Result<(), NnError> {
        self.inner.save_checkpoint(w)
    }

    /// Restores a checkpoint written by [`save_checkpoint`]. Fails with a
    /// clean error (and no partial mutation) on corrupt or mismatched
    /// files.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`]/[`NnError::Param`] on invalid checkpoints.
    ///
    /// [`save_checkpoint`]: SimclrTrainer::save_checkpoint
    pub fn load_checkpoint<R: Read>(&mut self, r: R) -> Result<(), NnError> {
        self.inner.load_checkpoint(r)
    }
}

/// Extracts all features of a dataset with the given encoder (eval mode,
/// full precision) — shared by the evaluation harness and examples.
///
/// # Errors
///
/// Propagates layer errors.
pub fn extract_features(
    encoder: &mut Encoder,
    dataset: &Dataset,
    batch_size: usize,
) -> Result<(Tensor, Vec<usize>), NnError> {
    let mut feats: Vec<f32> = Vec::with_capacity(dataset.len() * encoder.feat_dim());
    let mut labels = Vec::with_capacity(dataset.len());
    let ctx = ForwardCtx::eval();
    let mut i = 0;
    while i < dataset.len() {
        let end = (i + batch_size).min(dataset.len());
        let idxs: Vec<usize> = (i..end).collect();
        let (x, l) = dataset.batch(&idxs);
        let h = encoder.features(&x, &ctx)?;
        feats.extend_from_slice(h.as_slice());
        labels.extend(l);
        i = end;
    }
    let d = encoder.feat_dim();
    Ok((Tensor::from_vec(feats, &[dataset.len(), d])?, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::DatasetConfig;
    use cq_models::{Arch, EncoderConfig};
    use cq_quant::PrecisionSet;

    fn tiny_encoder(seed: u64) -> Encoder {
        Encoder::new(
            &EncoderConfig::new(Arch::ResNet18, 2).with_proj(16, 8),
            seed,
        )
        .unwrap()
    }

    fn tiny_dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::cifarlike().with_sizes(32, 8)).0
    }

    fn cfg(pipeline: Pipeline) -> PretrainConfig {
        PretrainConfig {
            pipeline,
            precision_set: pipeline
                .needs_precisions()
                .then(|| PrecisionSet::range(6, 16).unwrap()),
            epochs: 1,
            batch_size: 8,
            lr: 0.02,
            ..Default::default()
        }
    }

    #[test]
    fn every_pipeline_trains_one_epoch() {
        let ds = tiny_dataset();
        for pipeline in Pipeline::all() {
            let mut t = SimclrTrainer::new(tiny_encoder(1), cfg(pipeline)).unwrap();
            t.train(&ds).unwrap();
            let h = t.history();
            assert_eq!(h.epoch_losses.len(), 1, "{pipeline}");
            assert!(h.final_loss().unwrap().is_finite(), "{pipeline}");
            assert!(h.steps > 0, "{pipeline}");
            assert_eq!(t.epochs_done(), 1, "{pipeline}");
        }
    }

    #[test]
    fn loss_decreases_over_training() {
        let ds = tiny_dataset();
        let mut c = cfg(Pipeline::Baseline);
        c.epochs = 6;
        let mut t = SimclrTrainer::new(tiny_encoder(2), c).unwrap();
        t.train(&ds).unwrap();
        let l = &t.history().epoch_losses;
        assert!(
            l.last().unwrap() < l.first().unwrap(),
            "loss should decrease: {l:?}"
        );
    }

    #[test]
    fn quantized_pipeline_requires_precision_set() {
        let mut c = cfg(Pipeline::CqA);
        c.precision_set = None;
        assert!(SimclrTrainer::new(tiny_encoder(3), c).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let ds = tiny_dataset();
        let run = || {
            let mut t = SimclrTrainer::new(tiny_encoder(4), cfg(Pipeline::CqC)).unwrap();
            t.train(&ds).unwrap();
            t.history().final_loss().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn noise_pipelines_train() {
        let ds = tiny_dataset();
        for pipeline in Pipeline::extensions() {
            let c = PretrainConfig {
                pipeline,
                precision_set: None,
                noise_std: 0.05,
                epochs: 1,
                batch_size: 8,
                lr: 0.02,
                ..Default::default()
            };
            let mut t = SimclrTrainer::new(tiny_encoder(11), c).unwrap();
            t.train(&ds).unwrap();
            assert!(t.history().final_loss().unwrap().is_finite(), "{pipeline}");
        }
    }

    #[test]
    fn cyclic_sampling_trains_and_differs_from_uniform() {
        let ds = tiny_dataset();
        let run = |sampling| {
            let c = PretrainConfig {
                sampling,
                ..cfg(Pipeline::CqC)
            };
            let mut t = SimclrTrainer::new(tiny_encoder(12), c).unwrap();
            t.train(&ds).unwrap();
            t.history().final_loss().unwrap()
        };
        let u = run(crate::PrecisionSampling::Uniform);
        let cy = run(crate::PrecisionSampling::Cyclic);
        assert!(u.is_finite() && cy.is_finite());
        assert_ne!(u, cy, "different sampling schedules should diverge");
    }

    #[test]
    fn floor_mode_trains() {
        let ds = tiny_dataset();
        let c = PretrainConfig {
            quant_mode: cq_quant::QuantMode::Floor,
            ..cfg(Pipeline::CqC)
        };
        let mut t = SimclrTrainer::new(tiny_encoder(13), c).unwrap();
        t.train(&ds).unwrap();
        assert!(t.history().final_loss().unwrap().is_finite());
    }

    #[test]
    fn partial_training_resumes_to_same_loss() {
        let ds = tiny_dataset();
        let mut full = SimclrTrainer::new(tiny_encoder(6), cfg(Pipeline::CqA)).unwrap();
        let mut c2 = cfg(Pipeline::CqA);
        c2.epochs = 1; // same schedule; train_until splits the epoch loop
        let mut split = SimclrTrainer::new(tiny_encoder(6), c2).unwrap();
        full.train(&ds).unwrap();
        split.train_until(&ds, 0).unwrap();
        assert_eq!(split.epochs_done(), 0);
        split.train(&ds).unwrap();
        assert_eq!(full.history().epoch_losses, split.history().epoch_losses);
    }

    #[test]
    fn extract_features_shapes() {
        let ds = tiny_dataset();
        let mut enc = tiny_encoder(5);
        let (f, labels) = extract_features(&mut enc, &ds, 8).unwrap();
        assert_eq!(f.dims(), &[32, enc.feat_dim()]);
        assert_eq!(labels.len(), 32);
        assert!(f.is_finite());
    }
}
