//! The unified SSL training engine and checkpoint/resume subsystem.
//!
//! One [`TrainLoop`] owns everything the three SSL trainers used to
//! hand-roll separately: epoch iteration, the cosine LR schedule,
//! explosion/NaN step skipping, throughput and epoch-stat recording,
//! collapse probes, and health abort checks. Method-specific per-step
//! loss semantics live behind the [`SslMethod`] trait, which
//! `SimclrTrainer`/`ByolTrainer`/`SimsiamTrainer` implement; the trainers
//! themselves are thin wrappers around `TrainLoop<TheirMethod>`.
//!
//! On top of the loop sits the versioned [`TrainState`] checkpoint format
//! (`CQTS`, built on `cq_tensor::io`): parameters (including prediction
//! heads), BatchNorm running state, the BYOL target network, SGD momentum
//! buffers, step/epoch counters, [`TrainHistory`], and both RNG states
//! (engine sampling RNG + data-loader RNG, serializable via
//! [`cq_tensor::CqRng`]). Resume is *exact*: a run checkpointed at epoch
//! `k` and resumed produces a bitwise-identical loss trace and
//! quantization bit sequence to the uninterrupted run, at any
//! `CQ_THREADS` (pinned by the `checkpoint_resume` integration test and
//! the CI kill-and-resume job).
//!
//! Checkpoint loading is two-phase: the whole stream is parsed into a
//! [`TrainState`] and validated against the live trainer *before* any
//! field is written, so a corrupt/truncated/mismatched file fails with a
//! clean [`NnError`] and zero partial mutation.

use std::io::{Read, Write};

use cq_data::{Dataset, TwoViewBatch, TwoViewLoader};
use cq_models::Encoder;
use cq_nn::{CosineSchedule, ForwardCtx, GradSet, NnError, ParamSet, Sgd, SgdConfig};
use cq_quant::{Precision, QuantConfig};
use cq_tensor::{read_tensor, write_tensor, CqRng, Tensor};
use rand::{Rng, SeedableRng};

use crate::{Pipeline, PrecisionSampling, PretrainConfig, TrainHistory};

// Steps skipped due to gradient explosion, across all trainers in the
// process; no-op unless a cq-obs sink is installed.
static EXPLODED_STEPS: cq_obs::Counter = cq_obs::Counter::new("train.exploded_steps");
// Checkpoint lifecycle counters. `ckpt.*` is report-only in the
// `cq-trace diff` gate: a resumed run loads one checkpoint more than the
// uninterrupted run it must otherwise match.
static CKPT_SAVED: cq_obs::Counter = cq_obs::Counter::new(cq_obs::names::CKPT_SAVED);
static CKPT_LOADED: cq_obs::Counter = cq_obs::Counter::new(cq_obs::names::CKPT_LOADED);

/// Emits the per-step training metrics shared by all SSL methods (no-ops
/// without an installed sink or health monitor). Also called for exploded
/// steps — the possibly NaN/oversized values are what the health
/// sentinels need to see a divergence.
fn record_step_metrics(step: usize, loss: f32, norm: f32, lr: f32) {
    let step = step as u64;
    cq_obs::metric(cq_obs::names::TRAIN_LOSS, step, loss as f64);
    cq_obs::metric(cq_obs::names::TRAIN_GRAD_NORM, step, norm as f64);
    cq_obs::metric(cq_obs::names::TRAIN_LR, step, lr as f64);
}

/// Emits the per-step worker-pool attribution metrics — utilization (busy
/// time per wall-nanosecond per executor) and chunk-claim imbalance —
/// from the pool counter deltas across the step. Both series are
/// scheduling telemetry: `cq-trace diff` reports but never gates them.
fn record_pool_metrics(step: usize, before: &cq_tensor::par::PoolStats, wall_ns: u64) {
    let after = cq_tensor::par::pool_stats();
    let width = after.workers_spawned + 1; // the dispatching caller participates
    let step = step as u64;
    if let Some(util) = after.utilization_since(before, wall_ns, width) {
        cq_obs::metric(cq_obs::names::POOL_UTILIZATION, step, util);
    }
    if let Some(imbalance) = after.imbalance_since(before) {
        cq_obs::metric(cq_obs::names::POOL_CHUNK_IMBALANCE, step, imbalance);
    }
}

/// Cumulative bytes of intermediate-tensor traffic elided by the graph
/// executor's fusion pass, read from the process-global counter totals.
fn fusion_elided_total() -> u64 {
    cq_obs::counter_totals()
        .iter()
        .find(|(name, _)| *name == cq_obs::names::FUSION_PASS_ELIDED_BYTES)
        .map_or(0, |&(_, total)| total)
}

/// Emits the per-step fused-pass traffic savings as a metric series —
/// the delta of the cumulative `fusion.pass_elided_bytes` counter across
/// the step (0 under `CQ_FUSION=off`). Deterministic for a fixed fusion
/// mode, so `cq-trace diff` gates it within a mode; cross-mode diffs
/// exempt the `fusion.` prefix.
fn record_fusion_metrics(step: usize, elided_before: u64) {
    let elided = fusion_elided_total().saturating_sub(elided_before);
    cq_obs::metric(
        cq_obs::names::FUSION_PASS_ELIDED_BYTES,
        step as u64,
        elided as f64,
    );
}

/// Emits the end-of-phase memory metrics: peak RSS so far (`VmHWM`) and
/// the allocation-call delta since the previous sample. The allocation
/// series only appears in binaries that installed
/// [`cq_obs::alloc::CountingAlloc`] as their global allocator.
fn record_phase_memory(step: usize) {
    if !cq_obs::enabled() {
        return;
    }
    let step = step as u64;
    if let Some(kb) = cq_obs::alloc::peak_rss_kb() {
        cq_obs::metric(cq_obs::names::MEM_PEAK_RSS_KB, step, kb as f64);
    }
    if let Some(calls) = cq_obs::alloc::alloc_calls() {
        static LAST: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let prev = LAST.swap(calls, std::sync::atomic::Ordering::Relaxed);
        cq_obs::metric(
            cq_obs::names::MEM_ALLOC_COUNT,
            step,
            calls.saturating_sub(prev) as f64,
        );
    }
}

/// Emits the end-of-epoch throughput metric.
fn record_epoch_throughput(step: usize, images: usize, elapsed: std::time::Duration) {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        cq_obs::metric(
            cq_obs::names::TRAIN_IMAGES_PER_SEC,
            step as u64,
            images as f64 / secs,
        );
    }
}

/// Surfaces a pending health abort (`CQ_OBS_HEALTH=abort` + Critical
/// verdict) as an error; the loop calls this once per step and per epoch.
fn abort_check() -> Result<(), NnError> {
    match cq_obs::health::abort_requested() {
        Some(msg) => Err(NnError::Health(msg)),
        None => Ok(()),
    }
}

/// Mean over the finite entries of `v`, plus the count of non-finite
/// entries (the NaN placeholders skipped/exploded steps leave behind).
/// All-non-finite input yields NaN, preserving "nothing succeeded".
fn finite_mean(v: &[f32]) -> (f32, usize) {
    let mut sum = 0.0f64;
    let mut finite = 0usize;
    for &x in v {
        if x.is_finite() {
            sum += x as f64;
            finite += 1;
        }
    }
    let mean = if finite == 0 {
        f32::NAN
    } else {
        (sum / finite as f64) as f32
    };
    (mean, v.len() - finite)
}

/// Pushes the epoch loss/grad-norm means (finite entries only) into the
/// history and emits the non-finite step count as a metric, which the
/// health NaN sentinel watches.
fn record_epoch_stats(history: &mut TrainHistory, losses: &[f32], norms: &[f32], step: usize) {
    let (loss_mean, bad) = finite_mean(losses);
    let (norm_mean, _) = finite_mean(norms);
    cq_obs::metric(
        cq_obs::names::TRAIN_NONFINITE_STEPS,
        step as u64,
        bad as f64,
    );
    history.epoch_losses.push(loss_mean);
    history.epoch_grad_norms.push(norm_mean);
}

/// Per-epoch SSL collapse probe: one extra full-precision forward over
/// `batch`, with the embedding statistics emitted as `embed.*` metrics.
/// Skipped entirely unless a sink or the health monitor is active, so
/// plain runs pay nothing.
fn record_collapse_probe(
    encoder: &mut Encoder,
    batch: &TwoViewBatch,
    step: usize,
) -> Result<(), NnError> {
    if !cq_models::stats::stats_enabled() {
        return Ok(());
    }
    let _sp = cq_obs::span("train.collapse_probe");
    let ctx = ForwardCtx::eval();
    let o1 = encoder.forward(&batch.view1, &ctx)?;
    let o2 = encoder.forward(&batch.view2, &ctx)?;
    cq_models::record_embedding_stats(step as u64, &o1.projection, &o2.projection)?;
    Ok(())
}

/// Per-step context handed to [`SslMethod::compute_loss`]: configuration,
/// the engine's sampling RNG, and the global step counter. All method
/// randomness (precision draws, weight-noise seeds) flows through this so
/// it is captured by checkpoints.
pub struct StepCtx<'a> {
    cfg: &'a PretrainConfig,
    rng: &'a mut CqRng,
    step: usize,
}

impl StepCtx<'_> {
    /// The run configuration.
    pub fn cfg(&self) -> &PretrainConfig {
        self.cfg
    }

    /// The global step counter (steps attempted so far, including skipped
    /// ones).
    pub fn step(&self) -> usize {
        self.step
    }

    /// Draws the iteration's precision pair `(q1, q2)` according to the
    /// configured sampling strategy.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Param`] when the config carries no precision
    /// set.
    pub fn sample_pair(&mut self) -> Result<(Precision, Precision), NnError> {
        let set = self.cfg.precision_set.as_ref().ok_or_else(|| {
            NnError::Param(format!(
                "pipeline {} requires a precision set",
                self.cfg.pipeline
            ))
        })?;
        Ok(match self.cfg.sampling {
            PrecisionSampling::Uniform => set.sample_pair(self.rng),
            PrecisionSampling::Cyclic => {
                let bits = set.as_slice();
                let n = bits.len();
                let t = self.step;
                (
                    Precision::Bits(bits[t % n]),
                    Precision::Bits(bits[(t + n / 2) % n]),
                )
            }
        })
    }

    /// A training forward context quantizing weights to precision `p`.
    pub fn quant_ctx(&self, p: Precision) -> ForwardCtx {
        ForwardCtx::train().with_quant(QuantConfig::uniform(p).with_mode(self.cfg.quant_mode))
    }

    /// Draws one weight-noise seed from the engine RNG.
    pub fn noise_seed(&mut self) -> u64 {
        self.rng.gen::<u64>()
    }

    /// A training forward context applying Gaussian weight noise with the
    /// given seed (pair with [`noise_seed`] so draws are checkpointed).
    ///
    /// [`noise_seed`]: StepCtx::noise_seed
    pub fn noise_ctx(&self, seed: u64) -> ForwardCtx {
        ForwardCtx::train().with_weight_noise(self.cfg.noise_std, seed)
    }
}

/// Per-step loss semantics of one self-supervised method. Everything else
/// — epoch iteration, LR schedule, explosion skipping, telemetry, health
/// aborts, checkpointing — is owned by [`TrainLoop`].
pub trait SslMethod {
    /// Method discriminant persisted in checkpoint headers.
    const TAG: u8;
    /// Human-readable method name (errors, `cq-bench inspect`).
    const NAME: &'static str;

    /// The full trainable parameter set (encoder plus any prediction
    /// head), in optimizer order.
    fn params(&self) -> &ParamSet;

    /// Mutable access to [`params`].
    ///
    /// [`params`]: SslMethod::params
    fn params_mut(&mut self) -> &mut ParamSet;

    /// Computes the step loss over `batch` and accumulates gradients into
    /// `gs`. All randomness must come from `ctx`.
    ///
    /// # Errors
    ///
    /// Propagates layer/loss errors.
    fn compute_loss(
        &mut self,
        batch: &TwoViewBatch,
        ctx: &mut StepCtx<'_>,
        gs: &mut GradSet,
    ) -> Result<f32, NnError>;

    /// Hook run after a successful optimizer step (BYOL updates its EMA
    /// target here). Default: no-op.
    ///
    /// # Errors
    ///
    /// Propagates parameter-bookkeeping errors.
    fn after_step(&mut self, cfg: &PretrainConfig) -> Result<(), NnError> {
        let _ = cfg;
        Ok(())
    }

    /// The encoder to run the per-epoch collapse probe on, or `None` to
    /// skip the probe (e.g. CQ-Quant, whose identical input views make
    /// the positive-pair probe vacuous).
    fn probe_encoder(&mut self, cfg: &PretrainConfig) -> Option<&mut Encoder>;

    /// Non-parameter state (BatchNorm running stats) of every module the
    /// optimizer trains, in a fixed traversal order.
    fn state_tensors(&self) -> Vec<&Tensor>;

    /// Mutable view of [`state_tensors`], for checkpoint restore.
    ///
    /// [`state_tensors`]: SslMethod::state_tensors
    fn state_tensors_mut(&mut self) -> Vec<&mut Tensor>;

    /// The EMA target network, if the method has one (BYOL).
    fn target(&self) -> Option<&Encoder> {
        None
    }

    /// Mutable access to [`target`].
    ///
    /// [`target`]: SslMethod::target
    fn target_mut(&mut self) -> Option<&mut Encoder> {
        None
    }
}

/// The single epoch-loop implementation in `cq-core` (enforced by the
/// cq-check `one-train-loop` lint): drives an [`SslMethod`] through
/// `cfg.epochs` of pre-training with cosine LR, explosion skipping,
/// telemetry, collapse probes, health aborts, and exact
/// checkpoint/resume.
pub struct TrainLoop<M: SslMethod> {
    method: M,
    cfg: PretrainConfig,
    opt: Sgd,
    loader: TwoViewLoader,
    rng: CqRng,
    history: TrainHistory,
    steps_taken: usize,
    epochs_done: usize,
}

impl<M: SslMethod> TrainLoop<M> {
    /// Builds a loop around `method`, with zeroed optimizer state and the
    /// engine RNG seeded from `cfg.seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Param`] for an inconsistent configuration.
    pub fn new(method: M, cfg: PretrainConfig, loader: TwoViewLoader) -> Result<Self, NnError> {
        cfg.validate().map_err(NnError::Param)?;
        let opt = Sgd::new(
            method.params(),
            SgdConfig {
                lr: cfg.lr,
                momentum: cfg.momentum,
                weight_decay: cfg.weight_decay,
                nesterov: false,
            },
        );
        let rng = CqRng::seed_from_u64(cfg.seed);
        Ok(TrainLoop {
            method,
            cfg,
            opt,
            loader,
            rng,
            history: TrainHistory::default(),
            steps_taken: 0,
            epochs_done: 0,
        })
    }

    /// The wrapped method.
    pub fn method(&self) -> &M {
        &self.method
    }

    /// Mutable access to the wrapped method.
    pub fn method_mut(&mut self) -> &mut M {
        &mut self.method
    }

    /// Consumes the loop, returning the method.
    pub fn into_method(self) -> M {
        self.method
    }

    /// The run configuration.
    pub fn cfg(&self) -> &PretrainConfig {
        &self.cfg
    }

    /// Training diagnostics so far.
    pub fn history(&self) -> &TrainHistory {
        &self.history
    }

    /// Steps attempted so far (including skipped ones).
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Epochs completed so far (survives checkpoint/resume).
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// Runs pre-training up to `cfg.epochs` completed epochs.
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors. Gradient explosions do NOT
    /// error: the step is skipped and counted in the history (this is the
    /// behaviour the paper describes for CQ-B).
    pub fn train(&mut self, dataset: &Dataset) -> Result<(), NnError> {
        self.train_until(dataset, self.cfg.epochs)
    }

    /// Runs pre-training until `stop_epoch` epochs are complete (clamped
    /// to `cfg.epochs`). The LR schedule always spans the full
    /// `cfg.epochs`, so a partial run followed by a resume traverses the
    /// same LR curve as an uninterrupted one.
    ///
    /// # Errors
    ///
    /// See [`train`].
    ///
    /// [`train`]: TrainLoop::train
    pub fn train_until(&mut self, dataset: &Dataset, stop_epoch: usize) -> Result<(), NnError> {
        let batches_per_epoch = self.loader.batches_per_epoch(dataset);
        let total = (self.cfg.epochs * batches_per_epoch).max(1);
        let sched = CosineSchedule::new(self.cfg.lr, total, total / 20);
        let stop = stop_epoch.min(self.cfg.epochs);
        while self.epochs_done < stop {
            // cq-allow(det-time-source): epoch wall-time telemetry only; never feeds a computation
            let epoch_start = std::time::Instant::now();
            let batches = self.loader.epoch(dataset);
            let mut losses = Vec::with_capacity(batches.len());
            let mut norms = Vec::with_capacity(batches.len());
            for batch in &batches {
                let lr = sched.lr_at(self.steps_taken);
                match self.step(batch, lr)? {
                    Some((loss, norm)) => {
                        losses.push(loss);
                        norms.push(norm);
                    }
                    // NaN placeholder keeps one slot per step; the epoch
                    // means skip it and its count becomes a metric.
                    None => {
                        losses.push(f32::NAN);
                        norms.push(f32::NAN);
                    }
                }
                self.steps_taken += 1;
            }
            record_epoch_throughput(
                self.steps_taken,
                batches.len() * self.cfg.batch_size,
                epoch_start.elapsed(),
            );
            record_phase_memory(self.steps_taken);
            if let Some(batch) = batches.first() {
                if let Some(encoder) = self.method.probe_encoder(&self.cfg) {
                    record_collapse_probe(encoder, batch, self.steps_taken)?;
                }
            }
            record_epoch_stats(&mut self.history, &losses, &norms, self.steps_taken);
            self.epochs_done += 1;
            abort_check()?;
        }
        Ok(())
    }

    /// One optimizer step on a two-view batch. Returns `None` when the
    /// step was skipped due to gradient explosion.
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors, and [`NnError::Health`] when the
    /// health monitor has latched an abort.
    pub fn step(&mut self, batch: &TwoViewBatch, lr: f32) -> Result<Option<(f32, f32)>, NnError> {
        abort_check()?;
        let _sp = cq_obs::span("train.step");
        let pool_window = cq_obs::enabled().then(|| {
            // cq-allow(det-time-source): step wall-time for pool utilization telemetry only
            (cq_tensor::par::pool_stats(), std::time::Instant::now())
        });
        let fusion_before = cq_obs::enabled().then(fusion_elided_total);
        let mut gs = self.method.params().zero_grads();
        let mut ctx = StepCtx {
            cfg: &self.cfg,
            rng: &mut self.rng,
            step: self.steps_taken,
        };
        let loss = self.method.compute_loss(batch, &mut ctx, &mut gs)?;
        let norm = gs.global_norm();
        if !loss.is_finite() || !gs.is_finite() || norm > self.cfg.explosion_threshold {
            self.history.exploded_steps += 1;
            EXPLODED_STEPS.add(1);
            if let Some((before, t0)) = &pool_window {
                record_pool_metrics(self.steps_taken, before, t0.elapsed().as_nanos() as u64);
            }
            if let Some(before) = fusion_before {
                record_fusion_metrics(self.steps_taken, before);
            }
            // Report the divergent values before skipping — this is what
            // lets the health sentinels see the explosion.
            record_step_metrics(self.steps_taken, loss, norm, lr);
            return Ok(None);
        }
        self.opt.step(self.method.params_mut(), &gs, lr)?;
        self.method.after_step(&self.cfg)?;
        self.history.steps += 1;
        if let Some((before, t0)) = &pool_window {
            record_pool_metrics(self.steps_taken, before, t0.elapsed().as_nanos() as u64);
        }
        if let Some(before) = fusion_before {
            record_fusion_metrics(self.steps_taken, before);
        }
        record_step_metrics(self.steps_taken, loss, norm, lr);
        Ok(Some((loss, norm)))
    }

    /// Writes a [`TrainState`] checkpoint capturing everything needed for
    /// bitwise-exact resume.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] on write failure.
    pub fn save_checkpoint<W: Write>(&self, w: W) -> Result<(), NnError> {
        let _sp = cq_obs::span("ckpt.save");
        let state = TrainState {
            version: TrainState::VERSION,
            method_tag: M::TAG,
            pipeline_tag: pipeline_tag(self.cfg.pipeline),
            seed: self.cfg.seed,
            batch_size: self.cfg.batch_size as u64,
            steps_taken: self.steps_taken as u64,
            epochs_done: self.epochs_done as u64,
            engine_rng: self.rng.state(),
            loader_rng: self.loader.rng_state(),
            history: self.history.clone(),
            params: self.method.params().clone(),
            state: self.method.state_tensors().into_iter().cloned().collect(),
            velocity: self.opt.velocity().to_vec(),
            target: self.method.target().map(|t| {
                (
                    t.params().clone(),
                    t.state_tensors().into_iter().cloned().collect(),
                )
            }),
        };
        state.write(w)?;
        CKPT_SAVED.add(1);
        Ok(())
    }

    /// Restores a checkpoint written by [`save_checkpoint`] into this
    /// loop. Validation is all-or-nothing: any parse error or mismatch
    /// with the live configuration/architecture fails *before* a single
    /// field is mutated.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] for corrupt/truncated/wrong-version files
    /// and header mismatches, [`NnError::Param`] for shape misalignment.
    ///
    /// [`save_checkpoint`]: TrainLoop::save_checkpoint
    pub fn load_checkpoint<R: Read>(&mut self, r: R) -> Result<(), NnError> {
        let _sp = cq_obs::span("ckpt.load");
        let st = TrainState::read(r)?;

        // --- validate everything up front; no mutation on any path that
        // can fail below this block ---
        if st.method_tag != M::TAG {
            return Err(NnError::Io(format!(
                "checkpoint is for method '{}', trainer is '{}'",
                TrainState::method_name(st.method_tag),
                M::NAME
            )));
        }
        let pipeline = pipeline_from_tag(st.pipeline_tag)
            .ok_or_else(|| NnError::Io(format!("unknown pipeline tag {}", st.pipeline_tag)))?;
        if pipeline != self.cfg.pipeline {
            return Err(NnError::Io(format!(
                "checkpoint pipeline {pipeline} does not match configured {}",
                self.cfg.pipeline
            )));
        }
        if st.seed != self.cfg.seed {
            return Err(NnError::Io(format!(
                "checkpoint seed {} does not match configured {}",
                st.seed, self.cfg.seed
            )));
        }
        if st.batch_size != self.cfg.batch_size as u64 {
            return Err(NnError::Io(format!(
                "checkpoint batch size {} does not match configured {}",
                st.batch_size, self.cfg.batch_size
            )));
        }
        if st.epochs_done as usize > self.cfg.epochs {
            return Err(NnError::Io(format!(
                "checkpoint is {} epochs in, config trains only {}",
                st.epochs_done, self.cfg.epochs
            )));
        }
        if st.engine_rng == [0u64; 4] || st.loader_rng == [0u64; 4] {
            // All-zero is xoshiro's degenerate fixed point and can never
            // be produced by seeding — it means the file is corrupt.
            return Err(NnError::Io("all-zero RNG state in checkpoint".into()));
        }
        check_params_aligned("parameters", self.method.params(), &st.params)?;
        check_state_aligned("state", &self.method.state_tensors(), &st.state)?;
        check_dims_aligned("momentum", self.opt.velocity(), &st.velocity)?;
        match (self.method.target(), &st.target) {
            (Some(t), Some((tp, ts))) => {
                check_params_aligned("target parameters", t.params(), tp)?;
                check_state_aligned("target state", &t.state_tensors(), ts)?;
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(NnError::Io(
                    "checkpoint has no target network, method expects one".into(),
                ))
            }
            (None, Some(_)) => {
                return Err(NnError::Io(
                    "checkpoint has a target network, method has none".into(),
                ))
            }
        }

        // --- commit; nothing below can fail after the checks above ---
        self.method.params_mut().copy_from(&st.params)?;
        for (dst, src) in self.method.state_tensors_mut().iter_mut().zip(&st.state) {
            dst.as_mut_slice().copy_from_slice(src.as_slice());
        }
        self.opt.set_velocity(st.velocity)?;
        if let (Some(t), Some((tp, ts))) = (self.method.target_mut(), &st.target) {
            t.params_mut().copy_from(tp)?;
            for (dst, src) in t.state_tensors_mut().iter_mut().zip(ts) {
                dst.as_mut_slice().copy_from_slice(src.as_slice());
            }
        }
        self.rng = CqRng::from_state(st.engine_rng);
        self.loader.set_rng_state(st.loader_rng);
        self.steps_taken = st.steps_taken as usize;
        self.epochs_done = st.epochs_done as usize;
        self.history = st.history;
        CKPT_LOADED.add(1);
        Ok(())
    }
}

/// Stable on-disk discriminant for [`Pipeline`] (checkpoint header).
fn pipeline_tag(p: Pipeline) -> u8 {
    match p {
        Pipeline::Baseline => 0,
        Pipeline::CqA => 1,
        Pipeline::CqB => 2,
        Pipeline::CqC => 3,
        Pipeline::CqQuant => 4,
        Pipeline::NoiseA => 5,
        Pipeline::NoiseC => 6,
    }
}

fn pipeline_from_tag(tag: u8) -> Option<Pipeline> {
    Some(match tag {
        0 => Pipeline::Baseline,
        1 => Pipeline::CqA,
        2 => Pipeline::CqB,
        3 => Pipeline::CqC,
        4 => Pipeline::CqQuant,
        5 => Pipeline::NoiseA,
        6 => Pipeline::NoiseC,
        _ => return None,
    })
}

fn check_params_aligned(what: &str, live: &ParamSet, ckpt: &ParamSet) -> Result<(), NnError> {
    if live.len() != ckpt.len() {
        return Err(NnError::Param(format!(
            "{what}: live model has {} tensors, checkpoint {}",
            live.len(),
            ckpt.len()
        )));
    }
    for ((_, ln, lt), (_, cn, ct)) in live.iter().zip(ckpt.iter()) {
        if ln != cn {
            return Err(NnError::Param(format!(
                "{what}: name mismatch '{ln}' vs checkpoint '{cn}'"
            )));
        }
        if lt.dims() != ct.dims() {
            return Err(NnError::Param(format!(
                "{what}: '{ln}' has dims {:?}, checkpoint {:?}",
                lt.dims(),
                ct.dims()
            )));
        }
    }
    Ok(())
}

fn check_state_aligned(what: &str, live: &[&Tensor], ckpt: &[Tensor]) -> Result<(), NnError> {
    if live.len() != ckpt.len() {
        return Err(NnError::Param(format!(
            "{what}: live model has {} tensors, checkpoint {}",
            live.len(),
            ckpt.len()
        )));
    }
    for (i, (lt, ct)) in live.iter().zip(ckpt).enumerate() {
        if lt.dims() != ct.dims() {
            return Err(NnError::Param(format!(
                "{what}: tensor {i} has dims {:?}, checkpoint {:?}",
                lt.dims(),
                ct.dims()
            )));
        }
    }
    Ok(())
}

fn check_dims_aligned(what: &str, live: &[Tensor], ckpt: &[Tensor]) -> Result<(), NnError> {
    let refs: Vec<&Tensor> = live.iter().collect();
    check_state_aligned(what, &refs, ckpt)
}

/// A parsed `CQTS` checkpoint: the full serialized training state of a
/// [`TrainLoop`]. Public so tooling (`cq-bench inspect`) can introspect
/// checkpoints without constructing a trainer.
#[derive(Debug, Clone)]
pub struct TrainState {
    /// Format version (currently [`TrainState::VERSION`]).
    pub version: u32,
    /// [`SslMethod::TAG`] of the writing trainer.
    pub method_tag: u8,
    /// Pipeline discriminant (see [`TrainState::pipeline`]).
    pub pipeline_tag: u8,
    /// `cfg.seed` of the writing run.
    pub seed: u64,
    /// `cfg.batch_size` of the writing run.
    pub batch_size: u64,
    /// Steps attempted when the checkpoint was written.
    pub steps_taken: u64,
    /// Epochs completed when the checkpoint was written.
    pub epochs_done: u64,
    /// Engine sampling RNG state (xoshiro256++).
    pub engine_rng: [u64; 4],
    /// Data-loader RNG state (xoshiro256++).
    pub loader_rng: [u64; 4],
    /// Training diagnostics at checkpoint time.
    pub history: TrainHistory,
    /// Trainable parameters (encoder plus any prediction head).
    pub params: ParamSet,
    /// BatchNorm running state, in the method's traversal order.
    pub state: Vec<Tensor>,
    /// SGD momentum buffers, in parameter order.
    pub velocity: Vec<Tensor>,
    /// BYOL target network (parameters + BatchNorm state), if any.
    pub target: Option<(ParamSet, Vec<Tensor>)>,
}

/// Caps on deserialized collection sizes: anything larger than these in a
/// header means the file is garbage, not a plausible training run.
const MAX_HISTORY_LEN: usize = 1 << 24;
const MAX_TENSOR_LIST: usize = 1 << 16;

impl TrainState {
    /// File magic of the checkpoint format.
    pub const MAGIC: [u8; 4] = *b"CQTS";
    /// Current format version.
    pub const VERSION: u32 = 1;

    /// Human-readable name for a method tag.
    pub fn method_name(tag: u8) -> &'static str {
        match tag {
            0 => "simclr",
            1 => "byol",
            2 => "simsiam",
            _ => "unknown",
        }
    }

    /// The pipeline this checkpoint was trained with, if the tag is
    /// recognised.
    pub fn pipeline(&self) -> Option<Pipeline> {
        pipeline_from_tag(self.pipeline_tag)
    }

    /// Serialises the state (magic + version header, then body).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] on write failure.
    pub fn write<W: Write>(&self, mut w: W) -> Result<(), NnError> {
        w.write_all(&Self::MAGIC)?;
        w.write_all(&self.version.to_le_bytes())?;
        w.write_all(&[self.method_tag, self.pipeline_tag])?;
        for v in [
            self.seed,
            self.batch_size,
            self.steps_taken,
            self.epochs_done,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        for half in [&self.engine_rng, &self.loader_rng] {
            for v in half {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        w.write_all(&(self.history.exploded_steps as u64).to_le_bytes())?;
        w.write_all(&(self.history.steps as u64).to_le_bytes())?;
        write_f32s(&mut w, &self.history.epoch_losses)?;
        write_f32s(&mut w, &self.history.epoch_grad_norms)?;
        self.params.save(&mut w)?;
        write_tensors(&mut w, &self.state)?;
        write_tensors(&mut w, &self.velocity)?;
        match &self.target {
            Some((tp, ts)) => {
                w.write_all(&[1])?;
                tp.save(&mut w)?;
                write_tensors(&mut w, ts)?;
            }
            None => w.write_all(&[0])?,
        }
        Ok(())
    }

    /// Parses a checkpoint written by [`write`]. Reads the entire stream
    /// before returning, so a truncated or corrupt file fails here rather
    /// than mid-restore.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] for bad magic, unsupported versions, and
    /// malformed or truncated content.
    ///
    /// [`write`]: TrainState::write
    pub fn read<R: Read>(mut r: R) -> Result<TrainState, NnError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != Self::MAGIC {
            return Err(NnError::Io(format!(
                "bad checkpoint magic {magic:?} (expected {:?})",
                Self::MAGIC
            )));
        }
        let version = read_u32(&mut r)?;
        if version != Self::VERSION {
            return Err(NnError::Io(format!(
                "unsupported checkpoint version {version} (this build reads {})",
                Self::VERSION
            )));
        }
        let mut tags = [0u8; 2];
        r.read_exact(&mut tags)?;
        let [method_tag, pipeline_tag] = tags;
        let seed = read_u64(&mut r)?;
        let batch_size = read_u64(&mut r)?;
        let steps_taken = read_u64(&mut r)?;
        let epochs_done = read_u64(&mut r)?;
        let mut engine_rng = [0u64; 4];
        let mut loader_rng = [0u64; 4];
        for half in [&mut engine_rng, &mut loader_rng] {
            for v in half.iter_mut() {
                *v = read_u64(&mut r)?;
            }
        }
        let exploded_steps = read_u64(&mut r)? as usize;
        let steps = read_u64(&mut r)? as usize;
        let epoch_losses = read_f32s(&mut r)?;
        let epoch_grad_norms = read_f32s(&mut r)?;
        let params = ParamSet::load(&mut r)?;
        let state = read_tensors(&mut r)?;
        let velocity = read_tensors(&mut r)?;
        let mut has_target = [0u8; 1];
        r.read_exact(&mut has_target)?;
        let target = match has_target[0] {
            0 => None,
            1 => {
                let tp = ParamSet::load(&mut r)?;
                let ts = read_tensors(&mut r)?;
                Some((tp, ts))
            }
            other => {
                return Err(NnError::Io(format!(
                    "bad target-presence byte {other} in checkpoint"
                )))
            }
        };
        Ok(TrainState {
            version,
            method_tag,
            pipeline_tag,
            seed,
            batch_size,
            steps_taken,
            epochs_done,
            engine_rng,
            loader_rng,
            history: TrainHistory {
                epoch_losses,
                epoch_grad_norms,
                exploded_steps,
                steps,
            },
            params,
            state,
            velocity,
            target,
        })
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, NnError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, NnError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_f32s<W: Write>(w: &mut W, v: &[f32]) -> Result<(), NnError> {
    w.write_all(&(v.len() as u32).to_le_bytes())?;
    for x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s<R: Read>(r: &mut R) -> Result<Vec<f32>, NnError> {
    let n = read_u32(r)? as usize;
    if n > MAX_HISTORY_LEN {
        return Err(NnError::Io(format!("implausible history length {n}")));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        out.push(f32::from_le_bytes(b));
    }
    Ok(out)
}

fn write_tensors<W: Write>(w: &mut W, ts: &[Tensor]) -> Result<(), NnError> {
    w.write_all(&(ts.len() as u32).to_le_bytes())?;
    for t in ts {
        write_tensor(&mut *w, t).map_err(NnError::Tensor)?;
    }
    Ok(())
}

fn read_tensors<R: Read>(r: &mut R) -> Result<Vec<Tensor>, NnError> {
    let n = read_u32(r)? as usize;
    if n > MAX_TENSOR_LIST {
        return Err(NnError::Io(format!("implausible tensor count {n}")));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Present malformed tensor payloads as checkpoint I/O errors —
        // to the caller this is a bad file, not a tensor-math failure.
        out.push(read_tensor(&mut *r).map_err(|e| NnError::Io(format!("checkpoint tensor: {e}")))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_tags_round_trip() {
        for p in Pipeline::all().into_iter().chain(Pipeline::extensions()) {
            assert_eq!(pipeline_from_tag(pipeline_tag(p)), Some(p));
        }
        assert_eq!(pipeline_from_tag(200), None);
    }

    #[test]
    fn finite_mean_skips_non_finite() {
        let (m, bad) = finite_mean(&[1.0, f32::NAN, 3.0, f32::INFINITY]);
        assert_eq!(m, 2.0);
        assert_eq!(bad, 2);
        let (m, bad) = finite_mean(&[f32::NAN]);
        assert!(m.is_nan());
        assert_eq!(bad, 1);
    }

    #[test]
    fn train_state_round_trips_through_bytes() {
        let mut params = ParamSet::new();
        params.add("w", Tensor::from_slice(&[1.0, 2.0, 3.0]));
        let st = TrainState {
            version: TrainState::VERSION,
            method_tag: 0,
            pipeline_tag: 1,
            seed: 7,
            batch_size: 8,
            steps_taken: 3,
            epochs_done: 1,
            engine_rng: [1, 2, 3, 4],
            loader_rng: [5, 6, 7, 8],
            history: TrainHistory {
                epoch_losses: vec![2.5],
                epoch_grad_norms: vec![0.5],
                exploded_steps: 0,
                steps: 3,
            },
            params,
            state: vec![Tensor::from_slice(&[0.25])],
            velocity: vec![Tensor::from_slice(&[0.0, 0.0, 0.0])],
            target: None,
        };
        let mut buf = Vec::new();
        st.write(&mut buf).unwrap();
        let back = TrainState::read(buf.as_slice()).unwrap();
        assert_eq!(back.seed, 7);
        assert_eq!(back.engine_rng, [1, 2, 3, 4]);
        assert_eq!(back.history.epoch_losses, vec![2.5]);
        assert_eq!(back.params, st.params);
        assert_eq!(back.velocity, st.velocity);
        assert!(back.target.is_none());
        assert_eq!(back.pipeline(), Some(Pipeline::CqA));

        // Corruption modes all fail cleanly.
        assert!(TrainState::read(&b"XXXX"[..]).is_err(), "bad magic");
        assert!(
            TrainState::read(&buf[..buf.len() / 2]).is_err(),
            "truncated"
        );
        let mut wrong_version = buf.clone();
        wrong_version[4] = 99;
        assert!(TrainState::read(wrong_version.as_slice()).is_err());
    }
}
