//! SimSiam trainer (Chen & He, ref 12 of the paper): a stop-gradient
//! siamese method with **no negative pairs and no momentum target** —
//! included as an extra baseline to situate Contrastive Quant among the
//! contrastive-learning frameworks it builds on.
//!
//! The loss is the symmetric negative cosine similarity
//! `L = D(p1, sg(z2))/2 + D(p2, sg(z1))/2` with `p = predictor(z)`; we
//! reuse [`crate::byol_regression`] (`2 − 2·cos` has the same gradient
//! direction as `−cos`, scaled by 2). The CQ-C adaptation mirrors the
//! BYOL one: per-precision view-consistency terms plus symmetric
//! cross-precision consistency on the projections.

use cq_data::{AugmentConfig, AugmentPipeline, Dataset, TwoViewBatch, TwoViewLoader};
use cq_models::{mlp_head, Encoder, HeadConfig};
use cq_nn::{CosineSchedule, ForwardCtx, Layer, NnError, Sequential, Sgd, SgdConfig};
use cq_quant::{Precision, QuantConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{byol_regression, Pipeline, PretrainConfig, TrainHistory};

/// SimSiam self-supervised pre-training, hosting [`Pipeline::Baseline`]
/// and [`Pipeline::CqC`].
pub struct SimsiamTrainer {
    encoder: Encoder,
    predictor: Sequential,
    encoder_params: usize,
    cfg: PretrainConfig,
    opt: Sgd,
    loader: TwoViewLoader,
    rng: StdRng,
    history: TrainHistory,
    steps_taken: usize,
}

impl std::fmt::Debug for SimsiamTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SimsiamTrainer(pipeline={}, steps={})",
            self.cfg.pipeline, self.steps_taken
        )
    }
}

impl SimsiamTrainer {
    /// Creates a SimSiam trainer around `encoder` (built with a
    /// batch-normed projection head, as in the reference method).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Param`] for inconsistent configs or pipelines
    /// other than `Baseline` / `CqC`.
    pub fn new(mut encoder: Encoder, cfg: PretrainConfig) -> Result<Self, NnError> {
        cfg.validate().map_err(NnError::Param)?;
        if !matches!(cfg.pipeline, Pipeline::Baseline | Pipeline::CqC) {
            return Err(NnError::Param(format!(
                "SimSiam hosts Baseline and CQ-C; got {}",
                cfg.pipeline
            )));
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x51A51);
        let encoder_params = encoder.params().len();
        let pd = encoder.proj_dim();
        let predictor = mlp_head(
            &HeadConfig::byol(pd, pd / 2 + 1, pd),
            "pred",
            encoder.params_mut(),
            &mut rng,
        );
        let opt = Sgd::new(
            encoder.params(),
            SgdConfig {
                lr: cfg.lr,
                momentum: cfg.momentum,
                weight_decay: cfg.weight_decay,
                nesterov: false,
            },
        );
        let loader = TwoViewLoader::new(
            AugmentPipeline::new(AugmentConfig::simclr()),
            cfg.batch_size,
            cfg.seed ^ 0x5151,
        );
        let sample_rng = StdRng::seed_from_u64(cfg.seed);
        Ok(SimsiamTrainer {
            encoder,
            predictor,
            encoder_params,
            cfg,
            opt,
            loader,
            rng: sample_rng,
            history: TrainHistory::default(),
            steps_taken: 0,
        })
    }

    /// Training diagnostics so far.
    pub fn history(&self) -> &TrainHistory {
        &self.history
    }

    /// Consumes the trainer, returning the encoder with the predictor
    /// stripped.
    pub fn into_encoder(self) -> Encoder {
        let mut enc = self.encoder;
        enc.params_mut().truncate(self.encoder_params);
        enc
    }

    /// Runs `cfg.epochs` of SimSiam pre-training.
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors; exploded steps are skipped and
    /// counted.
    pub fn train(&mut self, dataset: &Dataset) -> Result<(), NnError> {
        let total = (self.cfg.epochs * self.loader.batches_per_epoch(dataset)).max(1);
        let sched = CosineSchedule::new(self.cfg.lr, total, total / 20);
        for _ in 0..self.cfg.epochs {
            let epoch_start = std::time::Instant::now();
            let batches = self.loader.epoch(dataset);
            let mut losses = Vec::new();
            let mut norms = Vec::new();
            for batch in &batches {
                let lr = sched.lr_at(self.steps_taken);
                match self.step(batch, lr)? {
                    Some((loss, norm)) => {
                        losses.push(loss);
                        norms.push(norm);
                    }
                    // NaN placeholder keeps one slot per step; the epoch
                    // means skip it and its count becomes a metric.
                    None => {
                        losses.push(f32::NAN);
                        norms.push(f32::NAN);
                    }
                }
                self.steps_taken += 1;
            }
            crate::simclr::record_epoch_throughput(
                self.steps_taken,
                batches.len() * self.cfg.batch_size,
                epoch_start.elapsed(),
            );
            if let Some(batch) = batches.first() {
                crate::simclr::record_collapse_probe(&mut self.encoder, batch, self.steps_taken)?;
            }
            crate::simclr::record_epoch_stats(&mut self.history, &losses, &norms, self.steps_taken);
            crate::simclr::abort_check()?;
        }
        Ok(())
    }

    /// One optimizer step; `None` when skipped due to explosion.
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors, and [`NnError::Health`] when the
    /// health monitor has latched an abort.
    pub fn step(&mut self, batch: &TwoViewBatch, lr: f32) -> Result<Option<(f32, f32)>, NnError> {
        crate::simclr::abort_check()?;
        let _sp = cq_obs::span("train.step");
        let mut gs = self.encoder.params().zero_grads();
        let loss = match self.cfg.pipeline {
            Pipeline::Baseline => self.branch_loss(batch, None, &mut gs)?,
            Pipeline::CqC => {
                let (q1, q2) = self
                    .cfg
                    .precision_set
                    .as_ref()
                    .ok_or_else(|| NnError::Param("CQ-C requires a precision set".into()))?
                    .sample_pair(&mut self.rng);
                let mut loss = self.branch_loss(batch, Some(q1), &mut gs)?;
                loss += self.branch_loss(batch, Some(q2), &mut gs)?;
                loss
            }
            other => {
                return Err(NnError::Param(format!(
                    "unsupported SimSiam pipeline {other}"
                )))
            }
        };
        let norm = gs.global_norm();
        if !loss.is_finite() || !gs.is_finite() || norm > self.cfg.explosion_threshold {
            self.history.exploded_steps += 1;
            crate::simclr::record_exploded_step();
            // Report the divergent values before skipping — this is what
            // lets the health sentinels see the explosion.
            crate::simclr::record_step_metrics(self.steps_taken, loss, norm, lr);
            return Ok(None);
        }
        self.opt.step(self.encoder.params_mut(), &gs, lr)?;
        self.history.steps += 1;
        crate::simclr::record_step_metrics(self.steps_taken, loss, norm, lr);
        Ok(Some((loss, norm)))
    }

    /// Symmetric stop-grad loss at one (optional) precision: both views
    /// are encoded once; each prediction regresses onto the *detached*
    /// projection of the other view.
    fn branch_loss(
        &mut self,
        batch: &TwoViewBatch,
        q: Option<Precision>,
        gs: &mut cq_nn::GradSet,
    ) -> Result<f32, NnError> {
        let ctx = match q {
            Some(p) => ForwardCtx::train()
                .with_quant(QuantConfig::uniform(p).with_mode(self.cfg.quant_mode)),
            None => ForwardCtx::train(),
        };
        let o1 = self.encoder.forward(&batch.view1, &ctx)?;
        let o2 = self.encoder.forward(&batch.view2, &ctx)?;
        let (p1, c1) = self
            .predictor
            .forward(self.encoder.params(), &o1.projection, &ctx)?;
        let (p2, c2) = self
            .predictor
            .forward(self.encoder.params(), &o2.projection, &ctx)?;
        // D(p1, sg(z2)) — gradient flows through p1's branch only.
        let l1 = byol_regression(&p1, &o2.projection)?;
        let l2 = byol_regression(&p2, &o1.projection)?;
        let dz1 = self
            .predictor
            .backward(self.encoder.params(), &c1, &l1.grad_a, gs)?;
        self.encoder.backward_projection(&o1.trace, &dz1, gs)?;
        let dz2 = self
            .predictor
            .backward(self.encoder.params(), &c2, &l2.grad_a, gs)?;
        self.encoder.backward_projection(&o2.trace, &dz2, gs)?;
        Ok(0.5 * (l1.loss + l2.loss))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::DatasetConfig;
    use cq_models::{Arch, EncoderConfig};
    use cq_quant::PrecisionSet;

    fn tiny_encoder(seed: u64) -> Encoder {
        Encoder::new(
            &EncoderConfig::new(Arch::ResNet18, 2).with_byol_proj(16, 8),
            seed,
        )
        .unwrap()
    }

    fn tiny_dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::cifarlike().with_sizes(32, 8)).0
    }

    fn cfg(pipeline: Pipeline) -> PretrainConfig {
        PretrainConfig {
            pipeline,
            precision_set: pipeline
                .needs_precisions()
                .then(|| PrecisionSet::range(6, 16).unwrap()),
            epochs: 1,
            batch_size: 8,
            lr: 0.02,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_simsiam_trains() {
        let mut t = SimsiamTrainer::new(tiny_encoder(1), cfg(Pipeline::Baseline)).unwrap();
        t.train(&tiny_dataset()).unwrap();
        assert!(t.history().final_loss().unwrap().is_finite());
        assert!(t.history().steps > 0);
    }

    #[test]
    fn cqc_simsiam_trains() {
        let mut t = SimsiamTrainer::new(tiny_encoder(2), cfg(Pipeline::CqC)).unwrap();
        t.train(&tiny_dataset()).unwrap();
        assert!(t.history().final_loss().unwrap().is_finite());
    }

    #[test]
    fn into_encoder_strips_predictor() {
        let enc = tiny_encoder(3);
        let n = enc.params().len();
        let mut t = SimsiamTrainer::new(enc, cfg(Pipeline::Baseline)).unwrap();
        t.train(&tiny_dataset()).unwrap();
        let out = t.into_encoder();
        assert_eq!(out.params().len(), n);
        assert!(out.duplicate().is_ok());
    }

    #[test]
    fn unsupported_pipelines_rejected() {
        for p in [
            Pipeline::CqA,
            Pipeline::CqB,
            Pipeline::CqQuant,
            Pipeline::NoiseA,
        ] {
            assert!(SimsiamTrainer::new(tiny_encoder(4), cfg(p)).is_err(), "{p}");
        }
    }
}
