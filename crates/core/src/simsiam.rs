//! SimSiam trainer (Chen & He, ref 12 of the paper): a stop-gradient
//! siamese method with **no negative pairs and no momentum target** —
//! included as an extra baseline to situate Contrastive Quant among the
//! contrastive-learning frameworks it builds on. Implemented as an
//! [`SslMethod`] driven by the shared [`TrainLoop`] engine.
//!
//! The loss is the symmetric negative cosine similarity
//! `L = D(p1, sg(z2))/2 + D(p2, sg(z1))/2` with `p = predictor(z)`; we
//! reuse [`crate::byol_regression`] (`2 − 2·cos` has the same gradient
//! direction as `−cos`, scaled by 2). The CQ-C adaptation mirrors the
//! BYOL one: per-precision view-consistency terms plus symmetric
//! cross-precision consistency on the projections.

use std::io::{Read, Write};

use cq_data::{AugmentConfig, AugmentPipeline, Dataset, TwoViewBatch, TwoViewLoader};
use cq_models::{mlp_head, Encoder, HeadConfig};
use cq_nn::{ForwardCtx, GradSet, Layer, NnError, ParamSet, Sequential};
use cq_quant::Precision;
use cq_tensor::{CqRng, Tensor};
use rand::SeedableRng;

use crate::engine::{SslMethod, StepCtx, TrainLoop};
use crate::{byol_regression, Pipeline, PretrainConfig, TrainHistory};

/// SimSiam's per-step loss semantics: symmetric stop-gradient regression
/// of each view's prediction onto the other view's detached projection.
struct SimsiamMethod {
    encoder: Encoder,
    predictor: Sequential,
    encoder_params: usize,
}

impl SimsiamMethod {
    /// Symmetric stop-grad loss at one (optional) precision: both views
    /// are encoded once; each prediction regresses onto the *detached*
    /// projection of the other view.
    fn branch_loss(
        &mut self,
        batch: &TwoViewBatch,
        ctx: &StepCtx<'_>,
        q: Option<Precision>,
        gs: &mut GradSet,
    ) -> Result<f32, NnError> {
        let fctx = match q {
            Some(p) => ctx.quant_ctx(p),
            None => ForwardCtx::train(),
        };
        let o1 = self.encoder.forward(&batch.view1, &fctx)?;
        let o2 = self.encoder.forward(&batch.view2, &fctx)?;
        let (p1, c1) = self
            .predictor
            .forward(self.encoder.params(), &o1.projection, &fctx)?;
        let (p2, c2) = self
            .predictor
            .forward(self.encoder.params(), &o2.projection, &fctx)?;
        // D(p1, sg(z2)) — gradient flows through p1's branch only.
        let l1 = byol_regression(&p1, &o2.projection)?;
        let l2 = byol_regression(&p2, &o1.projection)?;
        let dz1 = self
            .predictor
            .backward(self.encoder.params(), &c1, &l1.grad_a, gs)?;
        self.encoder.backward_projection(&o1.trace, &dz1, gs)?;
        let dz2 = self
            .predictor
            .backward(self.encoder.params(), &c2, &l2.grad_a, gs)?;
        self.encoder.backward_projection(&o2.trace, &dz2, gs)?;
        Ok(0.5 * (l1.loss + l2.loss))
    }
}

impl SslMethod for SimsiamMethod {
    const TAG: u8 = 2;
    const NAME: &'static str = "simsiam";

    fn params(&self) -> &ParamSet {
        self.encoder.params()
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        self.encoder.params_mut()
    }

    fn compute_loss(
        &mut self,
        batch: &TwoViewBatch,
        ctx: &mut StepCtx<'_>,
        gs: &mut GradSet,
    ) -> Result<f32, NnError> {
        match ctx.cfg().pipeline {
            Pipeline::Baseline => self.branch_loss(batch, ctx, None, gs),
            Pipeline::CqC => {
                let (q1, q2) = ctx.sample_pair()?;
                let mut loss = self.branch_loss(batch, ctx, Some(q1), gs)?;
                loss += self.branch_loss(batch, ctx, Some(q2), gs)?;
                Ok(loss)
            }
            other => Err(NnError::Param(format!(
                "unsupported SimSiam pipeline {other}"
            ))),
        }
    }

    fn probe_encoder(&mut self, _cfg: &PretrainConfig) -> Option<&mut Encoder> {
        Some(&mut self.encoder)
    }

    fn state_tensors(&self) -> Vec<&Tensor> {
        let mut v = self.encoder.state_tensors();
        v.extend(self.predictor.state_tensors());
        v
    }

    fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v = self.encoder.state_tensors_mut();
        v.extend(self.predictor.state_tensors_mut());
        v
    }
}

/// SimSiam self-supervised pre-training, hosting [`Pipeline::Baseline`]
/// and [`Pipeline::CqC`].
pub struct SimsiamTrainer {
    inner: TrainLoop<SimsiamMethod>,
}

impl std::fmt::Debug for SimsiamTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SimsiamTrainer(pipeline={}, steps={})",
            self.inner.cfg().pipeline,
            self.inner.steps_taken()
        )
    }
}

impl SimsiamTrainer {
    /// Creates a SimSiam trainer around `encoder` (built with a
    /// batch-normed projection head, as in the reference method).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Param`] for inconsistent configs or pipelines
    /// other than `Baseline` / `CqC`.
    pub fn new(mut encoder: Encoder, cfg: PretrainConfig) -> Result<Self, NnError> {
        cfg.validate().map_err(NnError::Param)?;
        if !matches!(cfg.pipeline, Pipeline::Baseline | Pipeline::CqC) {
            return Err(NnError::Param(format!(
                "SimSiam hosts Baseline and CQ-C; got {}",
                cfg.pipeline
            )));
        }
        // cq-allow(det-rng-ctor): one-shot init stream derived from the run seed, consumed before training
        let mut rng = CqRng::seed_from_u64(cfg.seed ^ 0x51A51);
        let encoder_params = encoder.params().len();
        let pd = encoder.proj_dim();
        let predictor = mlp_head(
            &HeadConfig::byol(pd, pd / 2 + 1, pd),
            "pred",
            encoder.params_mut(),
            &mut rng,
        );
        let loader = TwoViewLoader::new(
            AugmentPipeline::new(AugmentConfig::simclr()),
            cfg.batch_size,
            cfg.seed ^ 0x5151,
        );
        let method = SimsiamMethod {
            encoder,
            predictor,
            encoder_params,
        };
        let inner = TrainLoop::new(method, cfg, loader)?;
        Ok(SimsiamTrainer { inner })
    }

    /// Training diagnostics so far.
    pub fn history(&self) -> &TrainHistory {
        self.inner.history()
    }

    /// Epochs completed so far (survives checkpoint/resume).
    pub fn epochs_done(&self) -> usize {
        self.inner.epochs_done()
    }

    /// Consumes the trainer, returning the encoder with the predictor
    /// stripped.
    pub fn into_encoder(self) -> Encoder {
        let m = self.inner.into_method();
        let mut enc = m.encoder;
        enc.params_mut().truncate(m.encoder_params);
        enc
    }

    /// Runs `cfg.epochs` of SimSiam pre-training.
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors; exploded steps are skipped and
    /// counted.
    pub fn train(&mut self, dataset: &Dataset) -> Result<(), NnError> {
        self.inner.train(dataset)
    }

    /// Runs pre-training until `stop_epoch` epochs are complete (clamped
    /// to `cfg.epochs`); the LR schedule still spans the full run.
    ///
    /// # Errors
    ///
    /// See [`train`](SimsiamTrainer::train).
    pub fn train_until(&mut self, dataset: &Dataset, stop_epoch: usize) -> Result<(), NnError> {
        self.inner.train_until(dataset, stop_epoch)
    }

    /// One optimizer step; `None` when skipped due to explosion.
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors, and [`NnError::Health`] when the
    /// health monitor has latched an abort.
    pub fn step(&mut self, batch: &TwoViewBatch, lr: f32) -> Result<Option<(f32, f32)>, NnError> {
        self.inner.step(batch, lr)
    }

    /// Writes a checkpoint from which [`load_checkpoint`] resumes
    /// bitwise-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] on write failure.
    ///
    /// [`load_checkpoint`]: SimsiamTrainer::load_checkpoint
    pub fn save_checkpoint<W: Write>(&self, w: W) -> Result<(), NnError> {
        self.inner.save_checkpoint(w)
    }

    /// Restores a checkpoint written by [`save_checkpoint`]. Fails with a
    /// clean error (and no partial mutation) on corrupt or mismatched
    /// files.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`]/[`NnError::Param`] on invalid checkpoints.
    ///
    /// [`save_checkpoint`]: SimsiamTrainer::save_checkpoint
    pub fn load_checkpoint<R: Read>(&mut self, r: R) -> Result<(), NnError> {
        self.inner.load_checkpoint(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::DatasetConfig;
    use cq_models::{Arch, EncoderConfig};
    use cq_quant::PrecisionSet;

    fn tiny_encoder(seed: u64) -> Encoder {
        Encoder::new(
            &EncoderConfig::new(Arch::ResNet18, 2).with_byol_proj(16, 8),
            seed,
        )
        .unwrap()
    }

    fn tiny_dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::cifarlike().with_sizes(32, 8)).0
    }

    fn cfg(pipeline: Pipeline) -> PretrainConfig {
        PretrainConfig {
            pipeline,
            precision_set: pipeline
                .needs_precisions()
                .then(|| PrecisionSet::range(6, 16).unwrap()),
            epochs: 1,
            batch_size: 8,
            lr: 0.02,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_simsiam_trains() {
        let mut t = SimsiamTrainer::new(tiny_encoder(1), cfg(Pipeline::Baseline)).unwrap();
        t.train(&tiny_dataset()).unwrap();
        assert!(t.history().final_loss().unwrap().is_finite());
        assert!(t.history().steps > 0);
    }

    #[test]
    fn cqc_simsiam_trains() {
        let mut t = SimsiamTrainer::new(tiny_encoder(2), cfg(Pipeline::CqC)).unwrap();
        t.train(&tiny_dataset()).unwrap();
        assert!(t.history().final_loss().unwrap().is_finite());
    }

    #[test]
    fn into_encoder_strips_predictor() {
        let enc = tiny_encoder(3);
        let n = enc.params().len();
        let mut t = SimsiamTrainer::new(enc, cfg(Pipeline::Baseline)).unwrap();
        t.train(&tiny_dataset()).unwrap();
        let out = t.into_encoder();
        assert_eq!(out.params().len(), n);
        assert!(out.duplicate().is_ok());
    }

    #[test]
    fn unsupported_pipelines_rejected() {
        for p in [
            Pipeline::CqA,
            Pipeline::CqB,
            Pipeline::CqQuant,
            Pipeline::NoiseA,
        ] {
            assert!(SimsiamTrainer::new(tiny_encoder(4), cfg(p)).is_err(), "{p}");
        }
    }
}
