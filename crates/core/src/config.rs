//! Pre-training configuration shared by the SimCLR and BYOL trainers.

use cq_quant::{PrecisionSet, QuantMode};

/// The pipeline designs of Fig. 1 plus the Table 8 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipeline {
    /// Vanilla SimCLR/BYOL — no quantization augmentation.
    Baseline,
    /// CQ-A: sequential augmentation, `NCE(F_q1(a1), F_q2(a2))` (Eq. 5).
    CqA,
    /// CQ-B: same-precision view pairs, `NCE(f1, f1⁺) + NCE(f2, f2⁺)`
    /// (Eq. 8).
    CqB,
    /// CQ-C: CQ-B plus explicit cross-precision consistency (Eq. 9).
    CqC,
    /// CQ-Quant: quantization as the *only* augmentation, `NCE(f1, f2)` on
    /// unaugmented inputs (§4.5).
    CqQuant,
    /// Extension (paper §4.2 names this future work): CQ-A's loss
    /// structure with Gaussian *weight noise* instead of quantization as
    /// the model-side augmentation.
    NoiseA,
    /// Extension: CQ-C's loss structure with Gaussian weight noise
    /// instead of quantization.
    NoiseC,
}

impl Pipeline {
    /// The paper's own variants, in presentation order.
    pub fn all() -> [Pipeline; 5] {
        [
            Pipeline::Baseline,
            Pipeline::CqA,
            Pipeline::CqB,
            Pipeline::CqC,
            Pipeline::CqQuant,
        ]
    }

    /// The noise-augmentation extensions (not in the paper's tables).
    pub fn extensions() -> [Pipeline; 2] {
        [Pipeline::NoiseA, Pipeline::NoiseC]
    }

    /// Whether the pipeline needs a precision set.
    pub fn needs_precisions(&self) -> bool {
        matches!(
            self,
            Pipeline::CqA | Pipeline::CqB | Pipeline::CqC | Pipeline::CqQuant
        )
    }

    /// Whether the pipeline perturbs weights with Gaussian noise.
    pub fn uses_weight_noise(&self) -> bool {
        matches!(self, Pipeline::NoiseA | Pipeline::NoiseC)
    }

    /// Encoder forwards per training step.
    pub fn forwards_per_step(&self) -> usize {
        match self {
            Pipeline::Baseline | Pipeline::CqA | Pipeline::CqQuant | Pipeline::NoiseA => 2,
            Pipeline::CqB | Pipeline::CqC | Pipeline::NoiseC => 4,
        }
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Pipeline::Baseline => "Baseline",
            Pipeline::CqA => "CQ-A",
            Pipeline::CqB => "CQ-B",
            Pipeline::CqC => "CQ-C",
            Pipeline::CqQuant => "CQ-Quant",
            Pipeline::NoiseA => "Noise-A",
            Pipeline::NoiseC => "Noise-C",
        }
    }
}

/// How the per-iteration precision pair `(q1, q2)` is drawn from the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrecisionSampling {
    /// Two independent uniform draws — the paper's scheme.
    #[default]
    Uniform,
    /// Deterministic cyclic walk (CPT-style, ref 3 of the paper):
    /// `q1 = set[t mod n]`, `q2 = set[(t + n/2) mod n]` at step `t`.
    Cyclic,
}

impl std::fmt::Display for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Hyper-parameters for one SSL pre-training run.
#[derive(Debug, Clone, PartialEq)]
pub struct PretrainConfig {
    /// Pipeline variant.
    pub pipeline: Pipeline,
    /// Precision set sampled each iteration (`None` only for
    /// [`Pipeline::Baseline`]).
    pub precision_set: Option<PrecisionSet>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base learning rate (cosine-decayed).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// NT-Xent temperature (SimCLR path).
    pub temperature: f32,
    /// BYOL target EMA coefficient.
    pub ema_tau: f32,
    /// Gradient-norm threshold above which a step counts as exploded;
    /// exploded steps are skipped and recorded in [`TrainHistory`].
    pub explosion_threshold: f32,
    /// Rounding mode of the Eq. 10 quantizer (round-to-nearest by
    /// default; floor reproduces the paper's literal notation).
    pub quant_mode: QuantMode,
    /// Precision-pair sampling scheme.
    pub sampling: PrecisionSampling,
    /// Relative weight-noise strength for the Noise-A/Noise-C extensions.
    pub noise_std: f32,
    /// Seed for precision sampling and data order.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            pipeline: Pipeline::Baseline,
            precision_set: None,
            epochs: 10,
            batch_size: 64,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            temperature: 0.5,
            ema_tau: 0.99,
            explosion_threshold: 1e4,
            quant_mode: QuantMode::Round,
            sampling: PrecisionSampling::Uniform,
            noise_std: 0.05,
            seed: 0,
        }
    }
}

impl PretrainConfig {
    /// Validates pipeline/precision-set consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.pipeline.needs_precisions() && self.precision_set.is_none() {
            return Err(format!(
                "pipeline {} requires a precision set",
                self.pipeline
            ));
        }
        if let Some(set) = &self.precision_set {
            // PrecisionSet constructors enforce this, but the field is
            // public-by-clone from deserialized configs — re-check here so
            // cq-check sees every invariant at one choke point.
            for &b in set.as_slice() {
                if !(2..=16).contains(&b) {
                    return Err(format!(
                        "precision set contains {b}-bit; the quantizer supports 2..=16 \
                         (the paper samples 4-16 at the widest)"
                    ));
                }
            }
        }
        if self.batch_size < 2 {
            return Err("batch_size must be >= 2 (NT-Xent needs negatives)".into());
        }
        if self.epochs == 0 {
            return Err("epochs must be positive".into());
        }
        if !(self.lr > 0.0 && self.lr.is_finite()) {
            return Err("lr must be positive and finite".into());
        }
        if self.temperature <= 0.0 {
            return Err("temperature must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.ema_tau) {
            return Err("ema_tau must be in [0, 1]".into());
        }
        if self.pipeline.uses_weight_noise() && self.noise_std <= 0.0 {
            return Err(format!("pipeline {} requires noise_std > 0", self.pipeline));
        }
        Ok(())
    }
}

/// Per-run training diagnostics.
#[derive(Debug, Clone, Default)]
pub struct TrainHistory {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean gradient norm per epoch.
    pub epoch_grad_norms: Vec<f32>,
    /// Number of steps skipped due to explosion/non-finite gradients —
    /// how we quantify the paper's "CQ-B suffers severe gradient
    /// explosion" observation.
    pub exploded_steps: usize,
    /// Total optimizer steps taken.
    pub steps: usize,
}

impl TrainHistory {
    /// Final epoch loss, if any epochs ran.
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }

    /// Fraction of steps that exploded.
    pub fn explosion_rate(&self) -> f32 {
        if self.steps + self.exploded_steps == 0 {
            0.0
        } else {
            self.exploded_steps as f32 / (self.steps + self.exploded_steps) as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_properties() {
        assert!(!Pipeline::Baseline.needs_precisions());
        assert!(Pipeline::CqC.needs_precisions());
        assert_eq!(Pipeline::CqA.forwards_per_step(), 2);
        assert_eq!(Pipeline::CqB.forwards_per_step(), 4);
        assert_eq!(Pipeline::all().len(), 5);
        assert_eq!(Pipeline::CqC.to_string(), "CQ-C");
    }

    #[test]
    fn noise_extension_properties() {
        assert!(!Pipeline::NoiseA.needs_precisions());
        assert!(Pipeline::NoiseA.uses_weight_noise());
        assert!(!Pipeline::CqC.uses_weight_noise());
        assert_eq!(Pipeline::NoiseC.forwards_per_step(), 4);
        assert_eq!(Pipeline::extensions().len(), 2);
        let mut cfg = PretrainConfig {
            pipeline: Pipeline::NoiseC,
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());
        cfg.noise_std = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_validation() {
        let ok = PretrainConfig::default();
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.pipeline = Pipeline::CqA;
        assert!(bad.validate().is_err());
        bad.precision_set = Some(PrecisionSet::range(6, 16).unwrap());
        assert!(bad.validate().is_ok());
        let mut tiny = ok.clone();
        tiny.batch_size = 1;
        assert!(tiny.validate().is_err());
        let mut temp = ok;
        temp.temperature = -1.0;
        assert!(temp.validate().is_err());
    }

    #[test]
    fn history_rates() {
        let mut h = TrainHistory::default();
        assert_eq!(h.explosion_rate(), 0.0);
        assert_eq!(h.final_loss(), None);
        h.steps = 8;
        h.exploded_steps = 2;
        h.epoch_losses.push(1.5);
        assert!((h.explosion_rate() - 0.2).abs() < 1e-6);
        assert_eq!(h.final_loss(), Some(1.5));
    }
}
