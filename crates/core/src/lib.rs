//! # cq-core
//!
//! The paper's primary contribution: the **Contrastive Quant** framework
//! (Fu et al., DAC 2022).
//!
//! Contrastive Quant augments contrastive learning with *quantization
//! noise on weights and activations*: every training iteration samples two
//! precisions `(q1, q2)` from a [`cq_quant::PrecisionSet`] and enforces
//! feature consistency across both differently-augmented inputs and
//! differently-quantized encoders. Three pipeline designs are proposed
//! (Fig. 1 of the paper), all implemented here as [`Pipeline`] variants:
//!
//! | Variant | Loss (Eqs. 5–9) | Forwards/step |
//! |---|---|---|
//! | [`Pipeline::Baseline`] | `NCE(F(a1), F(a2))` — plain SimCLR/BYOL | 2 |
//! | [`Pipeline::CqA`] | `NCE(F_q1(a1), F_q2(a2))` — precision as a sequential extra augmentation | 2 |
//! | [`Pipeline::CqB`] | `NCE(f1, f1⁺) + NCE(f2, f2⁺)` — same-precision view pairs only | 4 |
//! | [`Pipeline::CqC`] | CQ-B + `NCE(f1, f2) + NCE(f1⁺, f2⁺)` — adds explicit cross-precision consistency | 4 |
//! | [`Pipeline::CqQuant`] | `NCE(f1, f2)` on *unaugmented* inputs — quantization as the only augmentation (Tab. 8) | 2 |
//!
//! with `f_i = F_{q_i}(Aug_1(x))`, `f_i⁺ = F_{q_i}(Aug_2(x))`.
//!
//! All host frameworks are implemented: [`SimclrTrainer`] (NT-Xent loss),
//! [`ByolTrainer`] (online/target networks, EMA target update,
//! stop-gradient, prediction head, MSE-style regression loss) and
//! [`SimsiamTrainer`]. Each is a thin wrapper around the shared
//! [`TrainLoop`] engine: the trainer supplies only per-step loss semantics
//! via the [`SslMethod`] trait, while the engine owns epoch iteration, the
//! LR schedule, explosion skipping, telemetry, health aborts, and exact
//! checkpoint/resume (see [`TrainState`]).

#![deny(missing_docs)]

mod byol;
mod config;
mod engine;
mod loss;
mod simclr;
mod simsiam;

pub use byol::ByolTrainer;
pub use config::{Pipeline, PrecisionSampling, PretrainConfig, TrainHistory};
pub use engine::{SslMethod, StepCtx, TrainLoop, TrainState};
pub use loss::{byol_regression, nt_xent, PairLoss};
pub use simclr::{extract_features, SimclrTrainer};
pub use simsiam::SimsiamTrainer;
