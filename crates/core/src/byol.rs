//! BYOL trainer (online/target networks) with Contrastive Quant support,
//! implemented as an [`SslMethod`] driven by the shared [`TrainLoop`]
//! engine.
//!
//! Per §3.4 of the paper, adapting Contrastive Quant to BYOL means:
//! (1) the NCE loss becomes BYOL's normalized-MSE regression loss;
//! (2) a projection head *and* prediction head follow the encoder;
//! (3) gradients are stopped along the target network, and both views pass
//! through online and target networks alternately (the symmetric loss).
//!
//! CQ-C on BYOL adds, on top of the per-precision view-consistency terms,
//! cross-precision consistency between the online projections of the same
//! view under `q1` vs `q2` (the direct analogue of Eq. 9's
//! `NCE(f1, f2) + NCE(f1⁺, f2⁺)` terms); each cross term is applied
//! symmetrically with a stop-gradient on the opposite branch.

use std::io::{Read, Write};

use cq_data::{AugmentConfig, AugmentPipeline, Dataset, TwoViewBatch, TwoViewLoader};
use cq_models::{mlp_head, Encoder, HeadConfig};
use cq_nn::{ForwardCtx, GradSet, Layer, NnError, ParamSet, Sequential};
use cq_quant::Precision;
use cq_tensor::{CqRng, Tensor};
use rand::SeedableRng;

use crate::engine::{SslMethod, StepCtx, TrainLoop};
use crate::{byol_regression, Pipeline, PretrainConfig, TrainHistory};

/// BYOL's per-step loss semantics: symmetric normalized-MSE regression of
/// online predictions onto stop-gradient target projections, with an EMA
/// target update after each optimizer step.
struct ByolMethod {
    online: Encoder,
    predictor: Sequential,
    /// Parameter count of the online encoder before the predictor was
    /// registered; used to strip the predictor in `into_encoder`.
    encoder_params: usize,
    target: Encoder,
}

impl ByolMethod {
    /// Symmetric BYOL loss at one precision: both views pass through the
    /// online network (with predictor) against the target's other view.
    fn branch_loss(
        &mut self,
        batch: &TwoViewBatch,
        ctx: &StepCtx<'_>,
        q: Option<Precision>,
        gs: &mut GradSet,
    ) -> Result<f32, NnError> {
        let fctx = match q {
            Some(p) => ctx.quant_ctx(p),
            None => ForwardCtx::train(),
        };
        let mut total = 0.0f32;
        for (va, vb) in [(&batch.view1, &batch.view2), (&batch.view2, &batch.view1)] {
            let online_out = self.online.forward(va, &fctx)?;
            let (p, pred_cache) =
                self.predictor
                    .forward(self.online.params(), &online_out.projection, &fctx)?;
            // stop-gradient: target forward is never backpropagated
            let t = self.target.forward(vb, &fctx)?;
            let pl = byol_regression(&p, &t.projection)?;
            total += pl.loss;
            let dz = self
                .predictor
                .backward(self.online.params(), &pred_cache, &pl.grad_a, gs)?;
            self.online
                .backward_projection(&online_out.trace, &dz, gs)?;
        }
        Ok(total)
    }

    /// Cross-precision consistency on online projections of one view,
    /// applied symmetrically with a stop-gradient on the opposite branch.
    fn cross_precision_loss(
        &mut self,
        view: &Tensor,
        ctx: &StepCtx<'_>,
        q1: Precision,
        q2: Precision,
        gs: &mut GradSet,
    ) -> Result<f32, NnError> {
        let c1 = ctx.quant_ctx(q1);
        let c2 = ctx.quant_ctx(q2);
        let o1 = self.online.forward(view, &c1)?;
        let o2 = self.online.forward(view, &c2)?;
        let l12 = byol_regression(&o1.projection, &o2.projection)?;
        let l21 = byol_regression(&o2.projection, &o1.projection)?;
        self.online
            .backward_projection(&o1.trace, &l12.grad_a, gs)?;
        self.online
            .backward_projection(&o2.trace, &l21.grad_a, gs)?;
        Ok(0.5 * (l12.loss + l21.loss))
    }
}

impl SslMethod for ByolMethod {
    const TAG: u8 = 1;
    const NAME: &'static str = "byol";

    fn params(&self) -> &ParamSet {
        self.online.params()
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        self.online.params_mut()
    }

    fn compute_loss(
        &mut self,
        batch: &TwoViewBatch,
        ctx: &mut StepCtx<'_>,
        gs: &mut GradSet,
    ) -> Result<f32, NnError> {
        match ctx.cfg().pipeline {
            Pipeline::Baseline => self.branch_loss(batch, ctx, None, gs),
            Pipeline::CqC => {
                let (q1, q2) = ctx.sample_pair()?;
                // View-consistency at each precision (Eq. 9 terms 1+2).
                let mut loss = self.branch_loss(batch, ctx, Some(q1), gs)?;
                loss += self.branch_loss(batch, ctx, Some(q2), gs)?;
                // Cross-precision consistency within each view (terms 3+4).
                loss += self.cross_precision_loss(&batch.view1, ctx, q1, q2, gs)?;
                loss += self.cross_precision_loss(&batch.view2, ctx, q1, q2, gs)?;
                Ok(loss)
            }
            other => Err(NnError::Param(format!("unsupported BYOL pipeline {other}"))),
        }
    }

    fn after_step(&mut self, cfg: &PretrainConfig) -> Result<(), NnError> {
        self.target.ema_update_from(&self.online, cfg.ema_tau)
    }

    fn probe_encoder(&mut self, _cfg: &PretrainConfig) -> Option<&mut Encoder> {
        Some(&mut self.online)
    }

    fn state_tensors(&self) -> Vec<&Tensor> {
        let mut v = self.online.state_tensors();
        v.extend(self.predictor.state_tensors());
        v
    }

    fn state_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v = self.online.state_tensors_mut();
        v.extend(self.predictor.state_tensors_mut());
        v
    }

    fn target(&self) -> Option<&Encoder> {
        Some(&self.target)
    }

    fn target_mut(&mut self) -> Option<&mut Encoder> {
        Some(&mut self.target)
    }
}

/// BYOL self-supervised pre-training, hosting the [`Pipeline::Baseline`]
/// and [`Pipeline::CqC`] variants evaluated in Table 6 of the paper.
pub struct ByolTrainer {
    inner: TrainLoop<ByolMethod>,
}

impl std::fmt::Debug for ByolTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ByolTrainer(pipeline={}, steps={})",
            self.inner.cfg().pipeline,
            self.inner.steps_taken()
        )
    }
}

impl ByolTrainer {
    /// Creates a BYOL trainer around `online` (which should be built with
    /// a BYOL-style projection head). A prediction head of the same shape
    /// as the projector is registered into the online parameter set; the
    /// target network starts as an exact copy.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Param`] for inconsistent configs or unsupported
    /// pipelines (BYOL hosts `Baseline` and `CqC`, the variants in the
    /// paper's Table 6).
    pub fn new(mut online: Encoder, cfg: PretrainConfig) -> Result<Self, NnError> {
        cfg.validate().map_err(NnError::Param)?;
        if !matches!(cfg.pipeline, Pipeline::Baseline | Pipeline::CqC) {
            return Err(NnError::Param(format!(
                "BYOL hosts Baseline and CQ-C (paper Tab. 6); got {}",
                cfg.pipeline
            )));
        }
        // cq-allow(det-rng-ctor): one-shot init stream derived from the run seed, consumed before training
        let mut rng = CqRng::seed_from_u64(cfg.seed ^ 0x1234);
        // Duplicate into the target BEFORE registering the predictor: the
        // target network has no prediction head.
        let target = online.duplicate()?;
        let encoder_params = online.params().len();
        let pd = online.proj_dim();
        let predictor = mlp_head(
            &HeadConfig::byol(pd, pd * 2, pd),
            "pred",
            online.params_mut(),
            &mut rng,
        );
        let loader = TwoViewLoader::new(
            AugmentPipeline::new(AugmentConfig::simclr()),
            cfg.batch_size,
            cfg.seed ^ 0xB0B0,
        );
        let method = ByolMethod {
            online,
            predictor,
            encoder_params,
            target,
        };
        let inner = TrainLoop::new(method, cfg, loader)?;
        Ok(ByolTrainer { inner })
    }

    /// The online encoder (the one that is kept after pre-training).
    pub fn online(&self) -> &Encoder {
        &self.inner.method().online
    }

    /// Mutable online encoder access.
    pub fn online_mut(&mut self) -> &mut Encoder {
        &mut self.inner.method_mut().online
    }

    /// Consumes the trainer, returning the trained online encoder with
    /// the prediction head stripped (its parameters were registered after
    /// the encoder's, so truncation restores architectural alignment for
    /// `duplicate`/`save`).
    pub fn into_encoder(self) -> Encoder {
        let m = self.inner.into_method();
        let mut online = m.online;
        online.params_mut().truncate(m.encoder_params);
        online
    }

    /// Training diagnostics so far.
    pub fn history(&self) -> &TrainHistory {
        self.inner.history()
    }

    /// Epochs completed so far (survives checkpoint/resume).
    pub fn epochs_done(&self) -> usize {
        self.inner.epochs_done()
    }

    /// Runs `cfg.epochs` of BYOL pre-training.
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors; exploded steps are skipped and
    /// counted, not raised.
    pub fn train(&mut self, dataset: &Dataset) -> Result<(), NnError> {
        self.inner.train(dataset)
    }

    /// Runs pre-training until `stop_epoch` epochs are complete (clamped
    /// to `cfg.epochs`); the LR schedule still spans the full run.
    ///
    /// # Errors
    ///
    /// See [`train`](ByolTrainer::train).
    pub fn train_until(&mut self, dataset: &Dataset, stop_epoch: usize) -> Result<(), NnError> {
        self.inner.train_until(dataset, stop_epoch)
    }

    /// One optimizer + EMA step. Returns `None` when skipped (explosion).
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors, and [`NnError::Health`] when the
    /// health monitor has latched an abort.
    pub fn step(&mut self, batch: &TwoViewBatch, lr: f32) -> Result<Option<(f32, f32)>, NnError> {
        self.inner.step(batch, lr)
    }

    /// Writes a checkpoint (parameters, predictor, target network,
    /// momentum, RNG states) from which [`load_checkpoint`] resumes
    /// bitwise-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`] on write failure.
    ///
    /// [`load_checkpoint`]: ByolTrainer::load_checkpoint
    pub fn save_checkpoint<W: Write>(&self, w: W) -> Result<(), NnError> {
        self.inner.save_checkpoint(w)
    }

    /// Restores a checkpoint written by [`save_checkpoint`]. Fails with a
    /// clean error (and no partial mutation) on corrupt or mismatched
    /// files.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Io`]/[`NnError::Param`] on invalid checkpoints.
    ///
    /// [`save_checkpoint`]: ByolTrainer::save_checkpoint
    pub fn load_checkpoint<R: Read>(&mut self, r: R) -> Result<(), NnError> {
        self.inner.load_checkpoint(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::DatasetConfig;
    use cq_models::{Arch, EncoderConfig};
    use cq_quant::PrecisionSet;

    fn tiny_encoder(seed: u64) -> Encoder {
        Encoder::new(
            &EncoderConfig::new(Arch::ResNet18, 2).with_byol_proj(16, 8),
            seed,
        )
        .unwrap()
    }

    fn tiny_dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::cifarlike().with_sizes(32, 8)).0
    }

    fn cfg(pipeline: Pipeline) -> PretrainConfig {
        PretrainConfig {
            pipeline,
            precision_set: pipeline
                .needs_precisions()
                .then(|| PrecisionSet::range(6, 16).unwrap()),
            epochs: 1,
            batch_size: 8,
            lr: 0.02,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_byol_trains() {
        let mut t = ByolTrainer::new(tiny_encoder(1), cfg(Pipeline::Baseline)).unwrap();
        t.train(&tiny_dataset()).unwrap();
        assert!(t.history().final_loss().unwrap().is_finite());
        assert!(t.history().steps > 0);
    }

    #[test]
    fn cqc_byol_trains() {
        let mut t = ByolTrainer::new(tiny_encoder(2), cfg(Pipeline::CqC)).unwrap();
        t.train(&tiny_dataset()).unwrap();
        assert!(t.history().final_loss().unwrap().is_finite());
    }

    #[test]
    fn unsupported_pipelines_rejected() {
        for p in [Pipeline::CqA, Pipeline::CqB, Pipeline::CqQuant] {
            assert!(ByolTrainer::new(tiny_encoder(3), cfg(p)).is_err(), "{p}");
        }
    }

    #[test]
    fn ema_moves_target() {
        let mut t = ByolTrainer::new(tiny_encoder(4), cfg(Pipeline::Baseline)).unwrap();
        let sums = |t: &ByolTrainer| -> Vec<f32> {
            t.inner
                .method()
                .target()
                .unwrap()
                .params()
                .iter()
                .map(|(_, _, p)| p.sum())
                .collect()
        };
        let before = sums(&t);
        t.train(&tiny_dataset()).unwrap();
        let after = sums(&t);
        assert_ne!(before, after, "EMA must move target parameters");
    }

    #[test]
    fn byol_loss_decreases() {
        let mut c = cfg(Pipeline::Baseline);
        c.epochs = 5;
        let mut t = ByolTrainer::new(tiny_encoder(5), c).unwrap();
        t.train(&tiny_dataset()).unwrap();
        let l = &t.history().epoch_losses;
        assert!(l.last().unwrap() <= l.first().unwrap(), "{l:?}");
    }
}
