//! BYOL trainer (online/target networks) with Contrastive Quant support.
//!
//! Per §3.4 of the paper, adapting Contrastive Quant to BYOL means:
//! (1) the NCE loss becomes BYOL's normalized-MSE regression loss;
//! (2) a projection head *and* prediction head follow the encoder;
//! (3) gradients are stopped along the target network, and both views pass
//! through online and target networks alternately (the symmetric loss).
//!
//! CQ-C on BYOL adds, on top of the per-precision view-consistency terms,
//! cross-precision consistency between the online projections of the same
//! view under `q1` vs `q2` (the direct analogue of Eq. 9's
//! `NCE(f1, f2) + NCE(f1⁺, f2⁺)` terms); each cross term is applied
//! symmetrically with a stop-gradient on the opposite branch.

use cq_data::{AugmentConfig, AugmentPipeline, Dataset, TwoViewBatch, TwoViewLoader};
use cq_models::{mlp_head, Encoder, HeadConfig};
use cq_nn::{CosineSchedule, ForwardCtx, Layer, NnError, Sequential, Sgd, SgdConfig};
use cq_quant::{Precision, QuantConfig};
use cq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{byol_regression, Pipeline, PretrainConfig, TrainHistory};

/// BYOL self-supervised pre-training, hosting the [`Pipeline::Baseline`]
/// and [`Pipeline::CqC`] variants evaluated in Table 6 of the paper.
pub struct ByolTrainer {
    online: Encoder,
    predictor: Sequential,
    /// Parameter count of the online encoder before the predictor was
    /// registered; used to strip the predictor in `into_encoder`.
    encoder_params: usize,
    target: Encoder,
    cfg: PretrainConfig,
    opt: Sgd,
    loader: TwoViewLoader,
    rng: StdRng,
    history: TrainHistory,
    steps_taken: usize,
}

impl std::fmt::Debug for ByolTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ByolTrainer(pipeline={}, steps={})",
            self.cfg.pipeline, self.steps_taken
        )
    }
}

impl ByolTrainer {
    /// Creates a BYOL trainer around `online` (which should be built with
    /// a BYOL-style projection head). A prediction head of the same shape
    /// as the projector is registered into the online parameter set; the
    /// target network starts as an exact copy.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Param`] for inconsistent configs or unsupported
    /// pipelines (BYOL hosts `Baseline` and `CqC`, the variants in the
    /// paper's Table 6).
    pub fn new(mut online: Encoder, cfg: PretrainConfig) -> Result<Self, NnError> {
        cfg.validate().map_err(NnError::Param)?;
        if !matches!(cfg.pipeline, Pipeline::Baseline | Pipeline::CqC) {
            return Err(NnError::Param(format!(
                "BYOL hosts Baseline and CQ-C (paper Tab. 6); got {}",
                cfg.pipeline
            )));
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1234);
        // Duplicate into the target BEFORE registering the predictor: the
        // target network has no prediction head.
        let target = online.duplicate()?;
        let encoder_params = online.params().len();
        let pd = online.proj_dim();
        let predictor = mlp_head(
            &HeadConfig::byol(pd, pd * 2, pd),
            "pred",
            online.params_mut(),
            &mut rng,
        );
        let opt = Sgd::new(
            online.params(),
            SgdConfig {
                lr: cfg.lr,
                momentum: cfg.momentum,
                weight_decay: cfg.weight_decay,
                nesterov: false,
            },
        );
        let loader = TwoViewLoader::new(
            AugmentPipeline::new(AugmentConfig::simclr()),
            cfg.batch_size,
            cfg.seed ^ 0xB0B0,
        );
        let sample_rng = StdRng::seed_from_u64(cfg.seed);
        Ok(ByolTrainer {
            online,
            predictor,
            encoder_params,
            target,
            cfg,
            opt,
            loader,
            rng: sample_rng,
            history: TrainHistory::default(),
            steps_taken: 0,
        })
    }

    /// The online encoder (the one that is kept after pre-training).
    pub fn online(&self) -> &Encoder {
        &self.online
    }

    /// Mutable online encoder access.
    pub fn online_mut(&mut self) -> &mut Encoder {
        &mut self.online
    }

    /// Consumes the trainer, returning the trained online encoder with
    /// the prediction head stripped (its parameters were registered after
    /// the encoder's, so truncation restores architectural alignment for
    /// `duplicate`/`save`).
    pub fn into_encoder(self) -> Encoder {
        let mut online = self.online;
        online.params_mut().truncate(self.encoder_params);
        online
    }

    /// Training diagnostics so far.
    pub fn history(&self) -> &TrainHistory {
        &self.history
    }

    /// Runs `cfg.epochs` of BYOL pre-training.
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors; exploded steps are skipped and
    /// counted, not raised.
    pub fn train(&mut self, dataset: &Dataset) -> Result<(), NnError> {
        let total = (self.cfg.epochs * self.loader.batches_per_epoch(dataset)).max(1);
        let sched = CosineSchedule::new(self.cfg.lr, total, total / 20);
        for _ in 0..self.cfg.epochs {
            let epoch_start = std::time::Instant::now();
            let batches = self.loader.epoch(dataset);
            let mut losses = Vec::new();
            let mut norms = Vec::new();
            for batch in &batches {
                let lr = sched.lr_at(self.steps_taken);
                match self.step(batch, lr)? {
                    Some((loss, norm)) => {
                        losses.push(loss);
                        norms.push(norm);
                    }
                    // NaN placeholder keeps one slot per step; the epoch
                    // means skip it and its count becomes a metric.
                    None => {
                        losses.push(f32::NAN);
                        norms.push(f32::NAN);
                    }
                }
                self.steps_taken += 1;
            }
            crate::simclr::record_epoch_throughput(
                self.steps_taken,
                batches.len() * self.cfg.batch_size,
                epoch_start.elapsed(),
            );
            if let Some(batch) = batches.first() {
                crate::simclr::record_collapse_probe(&mut self.online, batch, self.steps_taken)?;
            }
            crate::simclr::record_epoch_stats(&mut self.history, &losses, &norms, self.steps_taken);
            crate::simclr::abort_check()?;
        }
        Ok(())
    }

    /// One optimizer + EMA step. Returns `None` when skipped (explosion).
    ///
    /// # Errors
    ///
    /// Propagates layer/optimizer errors, and [`NnError::Health`] when the
    /// health monitor has latched an abort.
    pub fn step(&mut self, batch: &TwoViewBatch, lr: f32) -> Result<Option<(f32, f32)>, NnError> {
        crate::simclr::abort_check()?;
        let _sp = cq_obs::span("train.step");
        let mut gs = self.online.params().zero_grads();
        let loss = match self.cfg.pipeline {
            Pipeline::Baseline => self.branch_loss(batch, None, &mut gs)?,
            Pipeline::CqC => {
                let (q1, q2) = self
                    .cfg
                    .precision_set
                    .as_ref()
                    .ok_or_else(|| NnError::Param("CQ-C requires a precision set".into()))?
                    .sample_pair(&mut self.rng);
                // View-consistency at each precision (Eq. 9 terms 1+2).
                let mut loss = self.branch_loss(batch, Some(q1), &mut gs)?;
                loss += self.branch_loss(batch, Some(q2), &mut gs)?;
                // Cross-precision consistency within each view (terms 3+4).
                loss += self.cross_precision_loss(&batch.view1, q1, q2, &mut gs)?;
                loss += self.cross_precision_loss(&batch.view2, q1, q2, &mut gs)?;
                loss
            }
            other => return Err(NnError::Param(format!("unsupported BYOL pipeline {other}"))),
        };
        let norm = gs.global_norm();
        if !loss.is_finite() || !gs.is_finite() || norm > self.cfg.explosion_threshold {
            self.history.exploded_steps += 1;
            crate::simclr::record_exploded_step();
            // Report the divergent values before skipping — this is what
            // lets the health sentinels see the explosion.
            crate::simclr::record_step_metrics(self.steps_taken, loss, norm, lr);
            return Ok(None);
        }
        self.opt.step(self.online.params_mut(), &gs, lr)?;
        self.target
            .ema_update_from(&self.online, self.cfg.ema_tau)?;
        self.history.steps += 1;
        crate::simclr::record_step_metrics(self.steps_taken, loss, norm, lr);
        Ok(Some((loss, norm)))
    }

    /// Symmetric BYOL loss at one precision: both views pass through the
    /// online network (with predictor) against the target's other view.
    fn branch_loss(
        &mut self,
        batch: &TwoViewBatch,
        q: Option<Precision>,
        gs: &mut cq_nn::GradSet,
    ) -> Result<f32, NnError> {
        let ctx = match q {
            Some(p) => ForwardCtx::train()
                .with_quant(QuantConfig::uniform(p).with_mode(self.cfg.quant_mode)),
            None => ForwardCtx::train(),
        };
        let mut total = 0.0f32;
        for (va, vb) in [(&batch.view1, &batch.view2), (&batch.view2, &batch.view1)] {
            let online_out = self.online.forward(va, &ctx)?;
            let (p, pred_cache) =
                self.predictor
                    .forward(self.online.params(), &online_out.projection, &ctx)?;
            // stop-gradient: target forward is never backpropagated
            let t = self.target.forward(vb, &ctx)?;
            let pl = byol_regression(&p, &t.projection)?;
            total += pl.loss;
            let dz = self
                .predictor
                .backward(self.online.params(), &pred_cache, &pl.grad_a, gs)?;
            self.online
                .backward_projection(&online_out.trace, &dz, gs)?;
        }
        Ok(total)
    }

    /// Cross-precision consistency on online projections of one view,
    /// applied symmetrically with a stop-gradient on the opposite branch.
    fn cross_precision_loss(
        &mut self,
        view: &Tensor,
        q1: Precision,
        q2: Precision,
        gs: &mut cq_nn::GradSet,
    ) -> Result<f32, NnError> {
        let c1 =
            ForwardCtx::train().with_quant(QuantConfig::uniform(q1).with_mode(self.cfg.quant_mode));
        let c2 =
            ForwardCtx::train().with_quant(QuantConfig::uniform(q2).with_mode(self.cfg.quant_mode));
        let o1 = self.online.forward(view, &c1)?;
        let o2 = self.online.forward(view, &c2)?;
        let l12 = byol_regression(&o1.projection, &o2.projection)?;
        let l21 = byol_regression(&o2.projection, &o1.projection)?;
        self.online
            .backward_projection(&o1.trace, &l12.grad_a, gs)?;
        self.online
            .backward_projection(&o2.trace, &l21.grad_a, gs)?;
        Ok(0.5 * (l12.loss + l21.loss))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::DatasetConfig;
    use cq_models::{Arch, EncoderConfig};
    use cq_quant::PrecisionSet;

    fn tiny_encoder(seed: u64) -> Encoder {
        Encoder::new(
            &EncoderConfig::new(Arch::ResNet18, 2).with_byol_proj(16, 8),
            seed,
        )
        .unwrap()
    }

    fn tiny_dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::cifarlike().with_sizes(32, 8)).0
    }

    fn cfg(pipeline: Pipeline) -> PretrainConfig {
        PretrainConfig {
            pipeline,
            precision_set: pipeline
                .needs_precisions()
                .then(|| PrecisionSet::range(6, 16).unwrap()),
            epochs: 1,
            batch_size: 8,
            lr: 0.02,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_byol_trains() {
        let mut t = ByolTrainer::new(tiny_encoder(1), cfg(Pipeline::Baseline)).unwrap();
        t.train(&tiny_dataset()).unwrap();
        assert!(t.history().final_loss().unwrap().is_finite());
        assert!(t.history().steps > 0);
    }

    #[test]
    fn cqc_byol_trains() {
        let mut t = ByolTrainer::new(tiny_encoder(2), cfg(Pipeline::CqC)).unwrap();
        t.train(&tiny_dataset()).unwrap();
        assert!(t.history().final_loss().unwrap().is_finite());
    }

    #[test]
    fn unsupported_pipelines_rejected() {
        for p in [Pipeline::CqA, Pipeline::CqB, Pipeline::CqQuant] {
            assert!(ByolTrainer::new(tiny_encoder(3), cfg(p)).is_err(), "{p}");
        }
    }

    #[test]
    fn ema_moves_target() {
        let mut t = ByolTrainer::new(tiny_encoder(4), cfg(Pipeline::Baseline)).unwrap();
        let before: Vec<f32> = t.target.params().iter().map(|(_, _, p)| p.sum()).collect();
        t.train(&tiny_dataset()).unwrap();
        let after: Vec<f32> = t.target.params().iter().map(|(_, _, p)| p.sum()).collect();
        assert_ne!(before, after, "EMA must move target parameters");
    }

    #[test]
    fn byol_loss_decreases() {
        let mut c = cfg(Pipeline::Baseline);
        c.epochs = 5;
        let mut t = ByolTrainer::new(tiny_encoder(5), c).unwrap();
        t.train(&tiny_dataset()).unwrap();
        let l = &t.history().epoch_losses;
        assert!(l.last().unwrap() <= l.first().unwrap(), "{l:?}");
    }
}
